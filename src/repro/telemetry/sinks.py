"""Telemetry event sinks.

A sink receives *events* — flat JSON-serialisable dicts with at least an
``"event"`` key (``"span"`` and ``"metrics"`` today).  The default sink
is :class:`NullSink`, whose :meth:`~Sink.emit` is a no-op, so
instrumented code paths cost nothing unless a real sink is installed
(the CLI's ``--metrics out.jsonl`` flag installs a :class:`JsonlSink`).

Sinks are parent-process objects: sweep workers never see them and ship
their numbers back as pickled registries instead (see
:mod:`repro.telemetry.registry`).
"""

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional, Tuple


class Sink:
    """Event sink interface; also usable as a context manager."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class NullSink(Sink):
    """Discards everything — the zero-overhead default."""

    __slots__ = ()

    def emit(self, event: dict) -> None:
        pass


class MemorySink(Sink):
    """Collects events in a list (tests, in-process reporting)."""

    def __init__(self):
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(Sink):
    """Appends one JSON object per line to a file.

    The file is opened lazily on the first event (creating the parent
    directory if needed) and written with normal block buffering — the
    profiler's event streams are tens of thousands of records, where
    per-line flushing costs real time.  Buffering makes the close path
    load-bearing: :meth:`close` (idempotent) flushes everything, and the
    context-manager ``__exit__`` runs it even when the body raised, so a
    simulation blowing up mid-run still leaves a complete, parseable
    file behind.  Call :meth:`flush` to checkpoint mid-run (e.g. before
    handing the path to a tail-following reader).
    """

    def __init__(self, path):
        self.path = Path(path)
        self._handle = None

    def emit(self, event: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        # One write per record keeps the line intact even if a later
        # event raises mid-serialisation.
        self._handle.write(
            json.dumps(event, sort_keys=True, default=str) + "\n"
        )

    def flush(self) -> None:
        """Push buffered records to disk without closing."""
        if self._handle is not None:
            self._handle.flush()

    @property
    def closed(self) -> bool:
        """No open handle (never emitted, or already closed)."""
        return self._handle is None

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()


def read_events(path) -> List[dict]:
    """Parse a JSONL event file back into a list of dicts.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the offending line number.
    """
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
    return events


def read_events_lenient(path) -> Tuple[List[dict], int]:
    """Like :func:`read_events`, but skip malformed lines.

    Returns ``(events, skipped)`` — ``skipped`` counts the non-blank
    lines that failed to parse or decoded to a non-object.  A stream
    truncated mid-line by a crashed (or still-running) producer should
    degrade to a partial report, not a traceback; callers decide how
    loudly to warn.
    """
    events = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(event, dict):
                skipped += 1
                continue
            events.append(event)
    return events, skipped


# -- process-global current sink ----------------------------------------------

_state = threading.local()
_NULL_SINK = NullSink()


def get_sink() -> Sink:
    """The sink events are currently emitted to (default: a NullSink)."""
    return getattr(_state, "sink", None) or _NULL_SINK


def set_sink(sink: Optional[Sink]) -> None:
    """Install ``sink`` as current (``None`` restores the NullSink)."""
    _state.sink = sink


@contextmanager
def use_sink(sink: Sink):
    """Temporarily emit events to ``sink`` (nestable)."""
    previous = getattr(_state, "sink", None)
    _state.sink = sink
    try:
        yield sink
    finally:
        _state.sink = previous
