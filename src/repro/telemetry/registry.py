"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain, picklable bag of named
instruments.  Sweep workers each populate a fresh registry per grid
point and ship it back to the parent with the point's result; the parent
merges them in canonical point order, so the merged counters are
bit-identical whether a sweep ran serially or over N processes (counter
addition is commutative, and the merge order is fixed anyway).

Instrument semantics under :meth:`MetricsRegistry.merge`:

* counters add,
* gauges take the elementwise ``max`` (deterministic regardless of which
  process reported last),
* histograms require identical bucket bounds and add their per-bucket
  counts and running sums.

The *current* registry is process-global (see :func:`get_registry` /
:func:`use_registry`).  Instrumented code records into whatever registry
is current; with telemetry disabled (:func:`set_enabled` /
:func:`disabled`) every recording helper is a no-op.
"""

import math
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds — spans and phase
#: timings land here.  The last implicit bucket is +inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Log-bucket growth factor of the quantile sketch.  gamma = 1.02 bounds
#: the relative error of any reported quantile by (gamma-1)/(gamma+1),
#: i.e. under 1% — far tighter than the coarse fixed buckets — while a
#: full nanoseconds-to-minutes latency range still fits in ~1300 sparse
#: bins.
SKETCH_GAMMA = 1.02

#: Values at or below this collapse into the sketch's zero bin.
SKETCH_MIN = 1e-9

#: Percentiles every histogram snapshot reports.
PERCENTILES = (0.50, 0.95, 0.99)


class QuantileSketch:
    """Streaming quantiles with exact, order-independent merges.

    A DDSketch-style log-bucket sketch: a value lands in bin
    ``ceil(log_gamma(value))``, so every bin covers one multiplicative
    step of ``gamma`` and any quantile read back from bin midpoints has
    bounded *relative* error.  Bins are a sparse dict of counts, which
    makes :meth:`merge` plain integer addition — commutative,
    associative, and bit-deterministic regardless of how work was
    sharded across processes.  That is the same contract counters give,
    and it is why serial and N-worker runs report identical
    percentiles.
    """

    __slots__ = ("gamma", "bins", "zeros", "count", "total", "_log_gamma")

    def __init__(self, gamma: float = SKETCH_GAMMA):
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        self.gamma = gamma
        self._log_gamma = math.log(gamma)
        self.bins: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        if value <= SKETCH_MIN:
            self.zeros += 1
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0.0 on an empty sketch)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(0, math.ceil(q * self.count) - 1)
        if rank < self.zeros:
            return 0.0
        seen = self.zeros
        for index in sorted(self.bins):
            seen += self.bins[index]
            if seen > rank:
                # Midpoint of the bin (gamma^(i-1), gamma^i].
                return (
                    2.0 * self.gamma ** index / (self.gamma + 1.0)
                )
        # Unreachable when counts are consistent; be defensive anyway.
        return 2.0 * self.gamma ** max(self.bins) / (self.gamma + 1.0)

    def percentiles(self) -> Dict[str, float]:
        """The standard ``{"p50": ..., "p95": ..., "p99": ...}`` readout."""
        return {
            f"p{int(100 * q)}": self.quantile(q) for q in PERCENTILES
        }

    def merge(self, other: "QuantileSketch") -> None:
        if self.gamma != other.gamma:
            raise ValueError(
                f"sketch gamma differs ({self.gamma} vs {other.gamma})"
            )
        for index, count in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + count
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total

    def snapshot(self) -> dict:
        return {
            "gamma": self.gamma,
            "zeros": self.zeros,
            "count": self.count,
            "total": self.total,
            "bins": {
                str(index): count
                for index, count in sorted(self.bins.items())
            },
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "QuantileSketch":
        sketch = cls(gamma=payload.get("gamma", SKETCH_GAMMA))
        sketch.zeros = payload.get("zeros", 0)
        sketch.count = payload.get("count", 0)
        sketch.total = payload.get("total", 0.0)
        sketch.bins = {
            int(index): count
            for index, count in payload.get("bins", {}).items()
        }
        return sketch

    def __repr__(self):
        return (
            f"QuantileSketch(count={self.count}, "
            f"p50={self.quantile(0.5):.6f})"
        )


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (worker count, utilisation, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram with a running sum and count.

    ``buckets`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound.  Fixed buckets keep merges
    exact: two histograms with the same bounds merge by adding counts.

    Every histogram also feeds a :class:`QuantileSketch`, so p50/p95/p99
    ride along in snapshots with the same deterministic-merge guarantee
    as the bucket counts.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "sketch")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        self.sketch.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Quantile ``q`` in [0, 1] from the embedded sketch."""
        return self.sketch.quantile(q)

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({self.buckets} vs {other.buckets})"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.count += other.count
        self.sketch.merge(other.sketch)

    def __repr__(self):
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.6f})"
        )


class MetricsRegistry:
    """Named counters, gauges and histograms for one process (or point)."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create) --------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, buckets)
        return histogram

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (see module docstring)."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            mine = self.gauge(name)
            mine.set(max(mine.value, gauge.value))
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.buckets).merge(histogram)

    def snapshot(self) -> dict:
        """A JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: dict(
                    {
                        "buckets": list(histogram.buckets),
                        "counts": list(histogram.counts),
                        "total": histogram.total,
                        "count": histogram.count,
                        "sketch": histogram.sketch.snapshot(),
                    },
                    **histogram.sketch.percentiles(),
                )
                for name, histogram in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, data in payload.get("histograms", {}).items():
            histogram = registry.histogram(name, tuple(data["buckets"]))
            histogram.counts = list(data["counts"])
            histogram.total = data["total"]
            histogram.count = data["count"]
            if "sketch" in data:
                histogram.sketch = QuantileSketch.from_snapshot(
                    data["sketch"]
                )
        return registry

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self):
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, "
            f"histograms={len(self.histograms)})"
        )


# -- process-global current registry ------------------------------------------

_state = threading.local()
_GLOBAL_REGISTRY = MetricsRegistry()
_ENABLED = True


def get_registry() -> MetricsRegistry:
    """The registry instrumented code currently records into."""
    return getattr(_state, "registry", None) or _GLOBAL_REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install ``registry`` as current (``None`` restores the global one)."""
    _state.registry = registry


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily record into ``registry`` (nestable)."""
    previous = getattr(_state, "registry", None)
    _state.registry = registry
    try:
        yield registry
    finally:
        _state.registry = previous


def enabled() -> bool:
    """Whether instrumented code records at all."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def disabled():
    """Turn every telemetry helper into a no-op for the duration."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
