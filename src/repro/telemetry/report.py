"""Human-readable summaries of a telemetry JSONL event stream.

``repro telemetry-report run.jsonl`` renders three tables from a file
written by the ``--metrics`` flag: the final merged counters and gauges
(from the last ``"metrics"`` snapshot event), histogram summaries, and
per-path span aggregates.  Tables go through the same
``format_result_table`` renderer the experiment harness uses.
"""

from typing import List

from repro.telemetry.sinks import read_events


def _format_table(rows, columns, title):
    # Imported lazily: repro.sim imports repro.telemetry for
    # instrumentation, so a top-level import here would be circular.
    from repro.sim.stats import format_result_table

    return format_result_table(rows, columns, title=title)


def summarize_events(events: List[dict]) -> str:
    """Render counters/gauges/histograms/spans tables from ``events``."""
    sections = []

    metrics = [e for e in events if e.get("event") == "metrics"]
    snapshot = metrics[-1] if metrics else {}

    counters = snapshot.get("counters", {})
    if counters:
        rows = [
            {"counter": name, "value": value}
            for name, value in sorted(counters.items())
            if not name.startswith("span.")
        ]
        if rows:
            sections.append(_format_table(
                rows, ["counter", "value"], title="counters"
            ))

    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [
            {"gauge": name, "value": value}
            for name, value in sorted(gauges.items())
        ]
        sections.append(_format_table(
            rows, ["gauge", "value"], title="gauges"
        ))

    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            total = data.get("total", 0.0)
            rows.append({
                "histogram": name,
                "count": count,
                "total": total,
                "mean": total / count if count else 0.0,
            })
        sections.append(_format_table(
            rows, ["histogram", "count", "total", "mean"],
            title="histograms",
        ))

    spans = {}
    for event in events:
        if event.get("event") != "span":
            continue
        stats = spans.setdefault(
            event["path"], {"calls": 0, "total": 0.0, "max": 0.0}
        )
        stats["calls"] += 1
        stats["total"] += event["seconds"]
        stats["max"] = max(stats["max"], event["seconds"])
    if spans:
        rows = [
            {
                "span": path,
                "calls": stats["calls"],
                "total_s": stats["total"],
                "mean_s": stats["total"] / stats["calls"],
                "max_s": stats["max"],
            }
            for path, stats in sorted(spans.items())
        ]
        sections.append(_format_table(
            rows, ["span", "calls", "total_s", "mean_s", "max_s"],
            title="spans",
        ))

    if not sections:
        return "(no telemetry events)"
    return "\n\n".join(sections)


def render_report(path) -> str:
    """Summarise the JSONL event file at ``path``."""
    return summarize_events(read_events(path))
