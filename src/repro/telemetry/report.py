"""Human-readable summaries of telemetry and profiler event streams.

``repro telemetry-report run.jsonl`` renders three tables from a file
written by the ``--metrics`` flag: the final merged counters and gauges
(from the last ``"metrics"`` snapshot event), histogram summaries, and
per-path span aggregates.  Tables go through the same
``format_result_table`` renderer the experiment harness uses.

:func:`render_profile_markdown` is the shared markdown renderer for
misprediction-attribution reports: ``repro profile`` (single run,
in-process aggregator) and ``repro telemetry-report --profile`` (a
``--events`` JSONL folded back into an aggregator) both emit through
it, so sweep and single-run outputs always look the same.
"""

from typing import List, Optional

from repro.telemetry.sinks import read_events


def _format_table(rows, columns, title):
    # Imported lazily: repro.sim imports repro.telemetry for
    # instrumentation, so a top-level import here would be circular.
    from repro.sim.stats import format_result_table

    return format_result_table(rows, columns, title=title)


def summarize_events(events: List[dict]) -> str:
    """Render counters/gauges/histograms/spans tables from ``events``."""
    sections = []

    metrics = [e for e in events if e.get("event") == "metrics"]
    snapshot = metrics[-1] if metrics else {}

    counters = snapshot.get("counters", {})
    if counters:
        rows = [
            {"counter": name, "value": value}
            for name, value in sorted(counters.items())
            if not name.startswith("span.")
        ]
        if rows:
            sections.append(_format_table(
                rows, ["counter", "value"], title="counters"
            ))

    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [
            {"gauge": name, "value": value}
            for name, value in sorted(gauges.items())
        ]
        sections.append(_format_table(
            rows, ["gauge", "value"], title="gauges"
        ))

    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            total = data.get("total", 0.0)
            rows.append({
                "histogram": name,
                "count": count,
                "total": total,
                "mean": total / count if count else 0.0,
                "p50": data.get("p50", 0.0),
                "p95": data.get("p95", 0.0),
                "p99": data.get("p99", 0.0),
            })
        sections.append(_format_table(
            rows,
            ["histogram", "count", "total", "mean", "p50", "p95", "p99"],
            title="histograms",
        ))

    spans = {}
    for event in events:
        if event.get("event") != "span":
            continue
        stats = spans.setdefault(
            event["path"], {"calls": 0, "total": 0.0, "max": 0.0}
        )
        stats["calls"] += 1
        stats["total"] += event["seconds"]
        stats["max"] = max(stats["max"], event["seconds"])
    if spans:
        rows = [
            {
                "span": path,
                "calls": stats["calls"],
                "total_s": stats["total"],
                "mean_s": stats["total"] / stats["calls"],
                "max_s": stats["max"],
            }
            for path, stats in sorted(spans.items())
        ]
        sections.append(_format_table(
            rows, ["span", "calls", "total_s", "mean_s", "max_s"],
            title="spans",
        ))

    if not sections:
        return "(no telemetry events)"
    return "\n\n".join(sections)


def render_report(path) -> str:
    """Summarise the JSONL event file at ``path``."""
    return summarize_events(read_events(path))


def render_history_trend(store_root=None, pattern: Optional[str] = None,
                         last: int = 0) -> str:
    """Markdown trend report over the run-history store.

    The longitudinal counterpart to :func:`render_report`: where that
    summarises one run's event stream, this renders how the headline
    metrics evolved across the ``--record``-ed runs in the store (see
    :mod:`repro.runstore`).  ``repro history trend`` is a thin wrapper.
    """
    # Imported lazily: runstore imports repro.telemetry for snapshots.
    from repro.runstore import RunStore, render_trend_markdown

    records = RunStore(store_root).records()
    if last:
        records = records[-last:]
    return render_trend_markdown(records, pattern)


# -- misprediction-attribution reports ----------------------------------------


def _md_table(columns: List[str], rows: List[list]) -> str:
    """A GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(cell) for cell in row) + " |"
        )
    return "\n".join(lines)


def render_profile_markdown(aggregator, top: int = 10,
                            title: Optional[str] = None) -> str:
    """Render an attribution aggregator as a markdown report.

    ``aggregator`` is a
    :class:`~repro.profiler.attribution.AttributionAggregator` — from a
    single profiled run, or the merged product of a sweep; the renderer
    does not care which.
    """
    # Imported lazily, same reason as _format_table: repro.telemetry
    # must import without dragging the profiler package in.
    from repro.profiler.attribution import avail_bucket_labels
    from repro.trace.container import BranchClass

    totals = aggregator.totals()
    mispredictions = totals["mispredictions"]
    heading = title or (
        f"Misprediction attribution — {aggregator.workload}"
        if aggregator.workload
        else "Misprediction attribution"
    )
    sections = [f"# {heading}", ""]
    sections.append(
        f"- sampling: 1-in-{aggregator.spec.rate} "
        f"(seed {aggregator.spec.seed}); totals reconcile with "
        "simulation counts only at rate 1"
        if aggregator.spec.rate > 1
        else "- sampling: every branch (rate 1); totals reconcile "
        "exactly with simulation counts"
    )
    sections.append(
        f"- events: {totals['events']}  ·  mispredictions: "
        f"{mispredictions}  ·  squash-filtered: {totals['filtered']}  ·  "
        f"static sites: {totals['static_sites']}"
    )
    sections.append(
        f"- H2P: top {aggregator.h2p_count(0.9)} site(s) cover 90% of "
        "all mispredictions"
    )
    sections.append("")

    ranked = aggregator.top_branches(top)
    if ranked:
        covered = 0
        rows = []
        for rank, record in enumerate(ranked, start=1):
            covered += record.mispredictions
            rows.append([
                rank,
                record.workload or "-",
                record.pc,
                record.function or "-",
                record.region_id if record.region_id >= 0 else "-",
                BranchClass(record.branch_class).name.lower(),
                record.executions,
                record.mispredictions,
                f"{record.misprediction_rate:.4f}",
                record.filtered,
                f"{100 * covered / mispredictions:.1f}%"
                if mispredictions else "-",
            ])
        sections.append(f"## Top {len(ranked)} mispredicting branches")
        sections.append("")
        sections.append(_md_table(
            ["#", "workload", "pc", "function", "region", "class",
             "execs", "misp", "rate", "filtered", "cum%"],
            rows,
        ))
        sections.append("")

    if aggregator.classes:
        rows = []
        for cls, counts in sorted(aggregator.classes.items()):
            branches, misp, filtered = counts
            rows.append([
                BranchClass(cls).name.lower(), branches, misp,
                f"{misp / branches:.4f}" if branches else "-", filtered,
            ])
        sections.append("## Per-class breakdown")
        sections.append("")
        sections.append(_md_table(
            ["class", "branches", "mispredictions", "rate", "filtered"],
            rows,
        ))
        sections.append("")

    sfp = aggregator.sfp_breakdown()
    if sfp["filtered_correct"] or sfp["filtered_wrong"]:
        sections.append("## SFP squash filter")
        sections.append("")
        sections.append(_md_table(
            ["not filtered", "filtered correct", "filtered wrong",
             "squash accuracy", "coverage"],
            [[
                sfp["not_filtered"], sfp["filtered_correct"],
                sfp["filtered_wrong"],
                f"{sfp['squash_accuracy']:.4f}",
                f"{sfp['squash_coverage']:.4f}",
            ]],
        ))
        sections.append("")

    pgu = aggregator.pgu_breakdown()
    if any(v["events"] for k, v in pgu.items() if k != "off"):
        rows = [
            [path, data["events"], data["correct"],
             f"{data['accuracy']:.4f}" if data["events"] else "-"]
            for path, data in pgu.items()
            if data["events"]
        ]
        sections.append("## PGU history paths")
        sections.append("")
        sections.append(_md_table(
            ["path", "events", "correct", "accuracy"], rows
        ))
        sections.append("")

    avail = aggregator.availability()
    if avail["all"]["counts"] != [0] * len(avail["all"]["counts"]) or \
            avail["all"]["never"]:
        labels = avail_bucket_labels() + ["never"]
        all_counts = avail["all"]["counts"] + [avail["all"]["never"]]
        region_counts = (
            avail["region"]["counts"] + [avail["region"]["never"]]
        )
        sections.append("## Guard availability at fetch (distance)")
        sections.append("")
        sections.append(_md_table(
            ["distance"] + labels,
            [["all branches"] + all_counts,
             ["region-based"] + region_counts],
        ))
        sections.append("")

    timeline = aggregator.timeline_points()
    if len(timeline) > 1:
        worst = max(timeline, key=lambda p: p["mispredictions"])
        sections.append("## Timeline")
        sections.append("")
        sections.append(
            f"{len(timeline)} interval(s) of "
            f"{aggregator.spec.interval} branch events; worst interval "
            f"#{worst['interval']} (from event {worst['first_seq']}) "
            f"with {worst['mispredictions']} mispredictions over "
            f"{worst['branches']} branches."
        )
        sections.append("")
        rows = [
            [p["interval"], p["first_seq"], p["branches"],
             p["mispredictions"], p["filtered"]]
            for p in timeline
        ]
        sections.append(_md_table(
            ["interval", "first event", "branches", "mispredictions",
             "filtered"],
            rows,
        ))
        sections.append("")

    return "\n".join(sections).rstrip() + "\n"


def render_profile_events(path, top: int = 10) -> str:
    """Fold a profiler ``--events`` JSONL back into the markdown report."""
    from repro.profiler.collector import aggregate_event_stream

    return render_profile_markdown(aggregate_event_stream(path), top=top)
