"""Prometheus text exposition for a :class:`MetricsRegistry` snapshot.

``GET /metrics?format=prom`` on the serve daemon renders the same
snapshot the JSON endpoint returns, but in the Prometheus text format
(version 0.0.4) so a scraper can ingest it directly:

* counters become ``<name>_total`` counter series,
* gauges become gauge series,
* histograms become the conventional ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` trio **plus** one
  ``<name>{quantile="0.5|0.95|0.99"}`` gauge series per percentile,
  read from the embedded quantile sketch.

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): every other character — the dots and
dashes of ``serve.request.seconds`` — maps to ``_``.  The renderer is a
pure function of the snapshot dict, so it works on live registries and
on snapshots read back from JSONL alike.
"""

import re
from typing import List

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram quantiles exported as ``{quantile="..."}`` series.
PROM_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """Map an internal metric name onto the Prometheus grammar."""
    sanitized = _SANITIZE.sub("_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: float) -> str:
    """A float in Prometheus text form (integers without the dot)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    ``snapshot`` is what :meth:`MetricsRegistry.snapshot` returns (or
    the ``metrics`` payload of the serve daemon).  Output ends with a
    newline, as the format requires.
    """
    lines: List[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = data.get("buckets", [])
        counts = data.get("counts", [])
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        if len(counts) > len(bounds):
            cumulative += counts[len(bounds)]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(data.get('total', 0.0))}")
        lines.append(f"{metric}_count {data.get('count', 0)}")
        quantiles = [
            (label, data[key])
            for label, key in PROM_QUANTILES
            if key in data
        ]
        if quantiles:
            lines.append(f"# TYPE {metric}_quantile gauge")
            for label, value in quantiles:
                lines.append(
                    f'{metric}_quantile{{quantile="{label}"}} '
                    f"{_fmt(value)}"
                )

    return "\n".join(lines) + "\n"
