"""Nestable span timers for phase-level tracing.

A span times one phase of work (trace build, cache publish, sweep,
aggregate, ...).  Spans nest: each carries a ``/``-joined path built
from the enclosing spans on the same thread, so an event stream can be
reassembled into a tree.  On exit a span

* observes its duration into the current registry's
  ``span.<path>.seconds`` histogram and bumps ``span.<path>.calls``, and
* emits a ``{"event": "span", ...}`` record to the current sink.

With telemetry disabled the context manager skips the clock reads
entirely; with the default :class:`~repro.telemetry.sinks.NullSink` the
emit is a no-op.  Spans are phase-grained — never wrap per-branch work
in one.
"""

import threading
import time
from contextlib import contextmanager

from repro.telemetry import tracing
from repro.telemetry.registry import enabled, get_registry
from repro.telemetry.sinks import get_sink

_stack = threading.local()


def current_path() -> str:
    """The ``/``-joined path of open spans on this thread ('' if none)."""
    return "/".join(getattr(_stack, "names", []))


@contextmanager
def span(name: str, **attrs):
    """Time a phase: ``with span("sweep", points=32): ...``.

    ``attrs`` are attached verbatim to the emitted event (they must be
    JSON-serialisable).  Yields the full span path.

    With tracing on (:mod:`repro.telemetry.tracing`) the span also
    opens a trace context — children link to it across nesting and, via
    the propagation plumbing, across processes — and records a
    ``trace-span`` into the current :class:`SpanCollector` on exit.
    """
    if not enabled():
        yield name
        return
    names = getattr(_stack, "names", None)
    if names is None:
        names = _stack.names = []
    names.append(name)
    path = "/".join(names)
    ctx = tracing.push_span(name) if tracing.tracing_enabled() else None
    wall_start = time.time() if ctx is not None else 0.0
    start = time.perf_counter()
    try:
        yield path
    finally:
        seconds = time.perf_counter() - start
        names.pop()
        registry = get_registry()
        registry.histogram(f"span.{path}.seconds").observe(seconds)
        registry.counter(f"span.{path}.calls").inc()
        event = {
            "event": "span",
            "name": name,
            "path": path,
            "depth": path.count("/"),
            "seconds": seconds,
        }
        if attrs:
            event["attrs"] = attrs
        if ctx is not None:
            tracing.pop_span(ctx, name, wall_start, seconds,
                             attrs or None)
            event["trace_id"] = ctx.trace_id
            event["span_id"] = ctx.span_id
            event["parent_id"] = ctx.parent_id
        get_sink().emit(event)
