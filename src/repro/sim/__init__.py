"""Trace-driven predictor simulation."""

from repro.sim.core import CORES, resolve_core, use_core
from repro.sim.driver import BranchFlags, SimOptions, SimResult, simulate
from repro.sim.stats import ClassStats, format_result_table
from repro.sim.confidence import simulate_with_confidence
from repro.sim.hotspots import SiteStats, per_site_stats, top_hotspots
from repro.sim.sweep import (
    ParallelSweepRunner,
    SweepError,
    SweepPoint,
    SweepProgress,
    resolve_workers,
    sweep,
)

__all__ = [
    "BranchFlags",
    "CORES",
    "ClassStats",
    "ParallelSweepRunner",
    "SimOptions",
    "SimResult",
    "SiteStats",
    "SweepError",
    "SweepPoint",
    "SweepProgress",
    "per_site_stats",
    "resolve_core",
    "resolve_workers",
    "simulate_with_confidence",
    "top_hotspots",
    "format_result_table",
    "simulate",
    "sweep",
    "use_core",
]
