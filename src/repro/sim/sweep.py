"""Parameter sweeps: run a grid of (trace, predictor, options) points."""

from typing import Callable, Dict, Iterable, List

from repro.sim.driver import SimOptions, SimResult, simulate
from repro.trace.container import Trace


def sweep(
    traces: Dict[str, Trace],
    predictor_factories: Dict[str, Callable[[], "BranchPredictor"]],
    options_grid: Iterable[SimOptions],
) -> List[SimResult]:
    """Simulate every combination, with a *fresh* predictor per point.

    ``predictor_factories`` maps a label to a zero-argument constructor —
    predictors are stateful, so each grid point gets its own instance.
    Results come back in (trace, predictor, options) nesting order.
    """
    results: List[SimResult] = []
    options_list = list(options_grid)
    for trace_name, trace in traces.items():
        for label, factory in predictor_factories.items():
            for options in options_list:
                predictor = factory()
                result = simulate(trace, predictor, options)
                result.workload = trace_name
                result.predictor = label
                results.append(result)
    return results
