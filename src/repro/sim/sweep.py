"""Parameter sweeps: run a grid of (trace, predictor, options) points.

Grid points are fully independent, so the sweep can fan them out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  The parallel path is
bit-identical to the serial one: predictors are constructed in the parent
(one fresh instance per point, exactly as the serial loop does), shipped
to workers by pickle, and results are reassembled into the canonical
(trace, predictor, options) nesting order regardless of completion order.

Worker count resolution, in priority order:

1. an explicit ``workers=`` argument,
2. the ``REPRO_SWEEP_WORKERS`` environment variable,
3. ``1`` (serial, in-process — the historical behaviour).

``workers=0`` (or ``REPRO_SWEEP_WORKERS=0``) means "all CPUs".

Telemetry: each grid point is simulated under a *fresh*
:class:`~repro.telemetry.MetricsRegistry` (in the worker process for the
parallel path), which travels back with the result and is merged into
the parent's current registry in canonical point order — so merged
counters are bit-identical between the serial and parallel paths.  The
runner itself records ``sweep.*`` counters, per-point wall-time and
queue-wait histograms, and a worker-utilisation gauge.
"""

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro import telemetry
from repro.profiler.collector import AggregatingCollector
from repro.profiler.spec import ProfileSpec
from repro.sim.core import resolve_core
from repro.sim.driver import SimOptions, SimResult, simulate
from repro.telemetry import MetricsRegistry, span, tracing, use_registry
from repro.trace.container import Trace

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


class SweepError(RuntimeError):
    """A sweep grid point failed (worker exception or crashed worker)."""


@dataclass(frozen=True)
class SweepPoint:
    """Identity of one grid point, in canonical nesting order."""

    index: int  #: position in the (trace, predictor, options) ordering
    total: int  #: number of points in the whole grid
    workload: str
    predictor: str
    options: SimOptions


@dataclass(frozen=True)
class SweepProgress:
    """One per-point progress report, delivered as points *complete*."""

    point: SweepPoint
    seconds: float  #: wall-clock simulation time of this point
    completed: int  #: points finished so far (including this one)


#: Signature of the pluggable progress callback.
ProgressCallback = Callable[[SweepProgress], None]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``$REPRO_SWEEP_WORKERS`` > 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


# -- worker side --------------------------------------------------------------

#: Per-worker trace table, installed once by the pool initializer so each
#: trace crosses the process boundary once per worker, not once per point.
_WORKER_TRACES: Optional[Dict[str, Trace]] = None


def _init_worker(traces_blob: bytes) -> None:
    global _WORKER_TRACES
    _WORKER_TRACES = pickle.loads(traces_blob)


def _run_point(
    index, trace_name, label, predictor, options, profile=None,
    core="object", traceparent=None,
):
    """Simulate one grid point inside a worker process.

    The point runs under a fresh registry so its counters can be merged
    deterministically in the parent; ``started_at`` (wall clock) lets
    the parent estimate how long the point sat in the pool's queue.
    With a :class:`~repro.profiler.spec.ProfileSpec` the point also runs
    under a fresh attribution aggregator, which rides back to the parent
    on ``result.attribution`` exactly like the registry.

    ``traceparent`` (the parent sweep span's context) turns tracing on
    for the point: it runs under a ``sweep-point`` trace span whose id
    is derived from the sweep context and the point's canonical index —
    not from scheduling — and its spans ride back in a fresh
    :class:`~repro.telemetry.SpanCollector`, mirroring the registry.
    """
    started_at = time.time()
    start = time.perf_counter()
    collector = (
        AggregatingCollector(profile, workload=trace_name)
        if profile is not None
        else None
    )
    with ExitStack() as stack:
        spans_out = None
        if traceparent is not None:
            spans_out = tracing.SpanCollector()
            stack.enter_context(tracing.use_tracing(True))
            stack.enter_context(tracing.use_collector(spans_out))
            stack.enter_context(tracing.use_context(
                tracing.from_traceparent(traceparent), next_seq=index
            ))
            stack.enter_context(tracing.trace_span(
                "sweep-point", index=index, workload=trace_name,
                predictor=label,
            ))
        registry = stack.enter_context(use_registry(MetricsRegistry()))
        result = simulate(
            _WORKER_TRACES[trace_name], predictor, options,
            collector=collector, core=core,
        )
    result.workload = trace_name
    result.predictor = label
    return (
        index, result, time.perf_counter() - start, registry,
        started_at, spans_out,
    )


# -- parent side --------------------------------------------------------------


class ParallelSweepRunner:
    """Executes a sweep grid, serially or over a process pool.

    Results always come back in (trace, predictor, options) nesting
    order and are bit-identical to the serial path: each point gets a
    fresh predictor built in the parent by its factory, and
    :func:`~repro.sim.driver.simulate` is deterministic given (trace,
    predictor initial state, options).

    ``progress`` is called once per point, in *completion* order, with a
    :class:`SweepProgress` carrying identity, timing and running count.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        mp_context=None,
        core: Optional[str] = None,
    ):
        self.workers = resolve_workers(workers)
        self.progress = progress
        self.mp_context = mp_context
        self.core = core  #: simulation core knob; resolved at run()
        self._busy = 0.0  #: summed per-point seconds of the current run

    def run(
        self,
        traces: Dict[str, Trace],
        predictor_factories: Dict[str, Callable[[], "BranchPredictor"]],
        options_grid: Iterable[SimOptions],
        profile: Optional[ProfileSpec] = None,
    ) -> List[SimResult]:
        # Resolve the core in the parent so the ambient use_core() /
        # $REPRO_SIM_CORE context applies identically to the serial
        # path and to pool workers (which see neither).
        core = resolve_core(self.core)
        points = self._enumerate(traces, predictor_factories, options_grid)
        serial = self.workers <= 1 or len(points) <= 1
        effective = 1 if serial else min(self.workers, len(points))
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("sweep.runs").inc()
            registry.counter("sweep.points_total").inc(len(points))
            registry.gauge("sweep.workers").set(effective)
        self._busy = 0.0
        start = time.perf_counter()
        with span("sweep", points=len(points), workers=effective):
            if serial:
                results = self._run_serial(traces, points, profile, core)
            else:
                results = self._run_parallel(traces, points, profile, core)
        wall = time.perf_counter() - start
        if telemetry.enabled() and wall > 0.0:
            registry = telemetry.get_registry()
            # Busy-time over capacity: 1.0 means no worker ever idled.
            registry.gauge("sweep.worker_utilisation").set(
                min(1.0, self._busy / (wall * effective))
            )
            # Wall clock of the grid: with sweep.points_completed this
            # gives the points/second throughput RunRecords capture.
            registry.gauge("sweep.wall_seconds").set(wall)
            registry.gauge("sweep.points_per_second").set(
                len(points) / wall
            )
        return results

    def _enumerate(self, traces, predictor_factories, options_grid):
        """Materialise the grid in canonical nesting order.

        Each entry is ``(point, predictor)`` — the predictor is built
        here, in the parent, so construction order (and hence any
        factory-side state) matches the serial path exactly.
        """
        options_list = list(options_grid)
        total = (
            len(traces) * len(predictor_factories) * len(options_list)
        )
        points = []
        for trace_name in traces:
            for label, factory in predictor_factories.items():
                for options in options_list:
                    point = SweepPoint(
                        index=len(points),
                        total=total,
                        workload=trace_name,
                        predictor=label,
                        options=options,
                    )
                    points.append((point, factory()))
        return points

    def _report(self, point, seconds, completed):
        self._busy += seconds
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("sweep.points_completed").inc()
            registry.histogram("sweep.point_seconds").observe(seconds)
        if self.progress is not None:
            self.progress(
                SweepProgress(
                    point=point, seconds=seconds, completed=completed
                )
            )

    @staticmethod
    def _sweep_context():
        """The sweep span's trace context, if tracing is active.

        Inside ``run()``'s ``span("sweep")`` this is the context every
        per-point ``sweep-point`` span hangs off — the serial loop and
        the pool workers both derive point contexts from it by canonical
        index, which is what makes the two span sets identical.
        """
        if not tracing.tracing_enabled():
            return None
        return tracing.current_context()

    def _run_serial(self, traces, points, profile=None, core="object"):
        parent_registry = telemetry.get_registry()
        sweep_ctx = self._sweep_context()
        parent_spans = tracing.get_collector() if sweep_ctx else None
        results = []
        for point, predictor in points:
            start = time.perf_counter()
            collector = (
                AggregatingCollector(profile, workload=point.workload)
                if profile is not None
                else None
            )
            try:
                # Same shape as the parallel path: the point runs under
                # its own registry (and, when tracing, its own span
                # collector and derived context), merged back in
                # canonical order.
                with ExitStack() as stack:
                    if sweep_ctx is not None:
                        point_spans = tracing.SpanCollector()
                        stack.enter_context(
                            tracing.use_collector(point_spans)
                        )
                        stack.enter_context(tracing.use_context(
                            sweep_ctx, next_seq=point.index
                        ))
                        stack.enter_context(tracing.trace_span(
                            "sweep-point", index=point.index,
                            workload=point.workload,
                            predictor=point.predictor,
                        ))
                    registry = stack.enter_context(
                        use_registry(MetricsRegistry())
                    )
                    result = simulate(
                        traces[point.workload], predictor, point.options,
                        collector=collector, core=core,
                    )
            except Exception as exc:
                raise SweepError(self._describe_failure(point, exc)) from exc
            parent_registry.merge(registry)
            if sweep_ctx is not None:
                parent_spans.merge(point_spans)
            result.workload = point.workload
            result.predictor = point.predictor
            results.append(result)
            self._report(point, time.perf_counter() - start, len(results))
        return results

    def _run_parallel(self, traces, points, profile=None, core="object"):
        traces_blob = pickle.dumps(traces, protocol=pickle.HIGHEST_PROTOCOL)
        slots: List[Optional[SimResult]] = [None] * len(points)
        registries: List[Optional[MetricsRegistry]] = [None] * len(points)
        queue_waits: List[float] = [0.0] * len(points)
        sweep_ctx = self._sweep_context()
        traceparent = (
            sweep_ctx.to_traceparent() if sweep_ctx is not None else None
        )
        span_sets: List[Optional[tracing.SpanCollector]] = (
            [None] * len(points)
        )
        completed = 0
        max_workers = min(self.workers, len(points))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(traces_blob,),
        ) as pool:
            futures = {}
            submitted_at = {}
            for point, predictor in points:
                futures[
                    pool.submit(
                        _run_point,
                        point.index,
                        point.workload,
                        point.predictor,
                        predictor,
                        point.options,
                        profile,
                        core,
                        traceparent,
                    )
                ] = point
                submitted_at[point.index] = time.time()
            for future in as_completed(futures):
                point = futures[future]
                try:
                    (
                        index, result, seconds, registry,
                        started_at, point_spans,
                    ) = future.result()
                except BrokenProcessPool as exc:
                    raise SweepError(
                        "sweep worker process died unexpectedly (while "
                        f"running {len(futures)} points with "
                        f"{max_workers} workers); first affected point: "
                        f"{self._describe_point(point)}"
                    ) from exc
                except Exception as exc:
                    # Fail fast: drop queued points so the error isn't
                    # stuck behind the rest of the grid.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SweepError(
                        self._describe_failure(point, exc)
                    ) from exc
                slots[index] = result
                registries[index] = registry
                span_sets[index] = point_spans
                queue_waits[index] = max(
                    0.0, started_at - submitted_at[index]
                )
                completed += 1
                self._report(point, seconds, completed)
        # Merge the worker registries in canonical point order — the
        # same order the serial path merges in, so the merged counters
        # are identical however the points were scheduled.
        if telemetry.enabled():
            parent_registry = telemetry.get_registry()
            for registry in registries:
                if registry is not None:
                    parent_registry.merge(registry)
            queue_wait = parent_registry.histogram(
                "sweep.queue_wait_seconds"
            )
            for wait in queue_waits:
                queue_wait.observe(wait)
        if sweep_ctx is not None:
            # Same protocol for spans: canonical point order, so the
            # merged record list matches the serial path exactly.
            parent_spans = tracing.get_collector()
            for point_spans in span_sets:
                if point_spans is not None:
                    parent_spans.merge(point_spans)
        return slots

    @staticmethod
    def _describe_point(point: SweepPoint) -> str:
        return (
            f"point {point.index + 1}/{point.total} "
            f"(workload={point.workload!r}, predictor={point.predictor!r}, "
            f"options={point.options.describe()})"
        )

    def _describe_failure(self, point: SweepPoint, exc: Exception) -> str:
        return (
            f"sweep {self._describe_point(point)} failed: "
            f"{type(exc).__name__}: {exc}"
        )


def sweep(
    traces: Dict[str, Trace],
    predictor_factories: Dict[str, Callable[[], "BranchPredictor"]],
    options_grid: Iterable[SimOptions],
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    profile: Optional[ProfileSpec] = None,
    core: Optional[str] = None,
) -> List[SimResult]:
    """Simulate every combination, with a *fresh* predictor per point.

    ``predictor_factories`` maps a label to a zero-argument constructor —
    predictors are stateful, so each grid point gets its own instance.
    Results come back in (trace, predictor, options) nesting order,
    identically for the serial and parallel paths.

    ``workers`` > 1 fans points out over a process pool (``0`` = all
    CPUs, default serial; ``$REPRO_SWEEP_WORKERS`` overrides when the
    argument is omitted).  ``progress`` receives one
    :class:`SweepProgress` per completed point.

    ``profile`` turns on per-point misprediction attribution: each
    point's :class:`~repro.sim.driver.SimResult` carries an
    ``attribution`` aggregator, and
    :func:`repro.profiler.merge_attributions` folds them (pass results
    in the returned canonical order) into one deterministic report —
    identical for serial and parallel runs.

    ``core`` selects the simulation core for every point (argument >
    ambient :func:`repro.sim.core.use_core` > ``$REPRO_SIM_CORE`` >
    ``"object"``); it is resolved once in the parent, so pool workers
    honour the caller's context.  Fast cores are bit-identical to the
    object core and fall back to it per point where unsupported, so
    results never depend on the knob.
    """
    runner = ParallelSweepRunner(
        workers=workers, progress=progress, core=core
    )
    return runner.run(
        traces, predictor_factories, options_grid, profile=profile
    )
