"""Per-class statistics containers and report formatting."""

from dataclasses import dataclass
from typing import List


@dataclass
class ClassStats:
    """Counts for one branch class (normal / region-based / loop)."""

    branches: int = 0
    mispredictions: int = 0
    squashed: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def squash_coverage(self) -> float:
        return self.squashed / self.branches if self.branches else 0.0

    def merge(self, other: "ClassStats") -> "ClassStats":
        return ClassStats(
            branches=self.branches + other.branches,
            mispredictions=self.mispredictions + other.mispredictions,
            squashed=self.squashed + other.squashed,
        )


def format_result_table(rows: List[dict], columns: List[str],
                        title: str = "") -> str:
    """Render experiment rows as a fixed-width text table.

    Floats are shown with 4 significant decimals; this is what the
    benchmark harness prints for each reproduced table/figure.

    Alignment is consistent per column: a column whose values are all
    numbers (ignoring blanks) is right-aligned *including its header*;
    any other column is left-aligned.  An empty ``rows`` list renders
    just the header and rule.
    """
    def fmt(value):
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    def is_number(value):
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    numeric = [
        any(is_number(row.get(col)) for row in rows)
        and all(
            is_number(row.get(col)) or row.get(col, "") in ("", None)
            for row in rows
        )
        for col in columns
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in table)) if table
        else len(col)
        for i, col in enumerate(columns)
    ]

    def align(text, i):
        if numeric[i]:
            return text.rjust(widths[i])
        return text.ljust(widths[i])

    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(align(col, i) for i, col in enumerate(columns)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append(
            "  ".join(align(cell, i) for i, cell in enumerate(line)).rstrip()
        )
    return "\n".join(lines)
