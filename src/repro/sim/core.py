"""Simulation-core selection: ``object`` (reference) vs ``fast``/``numpy``.

The driver's object-model loop in :mod:`repro.sim.driver` is the
reference implementation; :mod:`repro.sim.fastcore` replays pre-decoded
flat arrays through allocation-free kernels and must stay bit-identical
(the differential suite enforces this).  Because metrics are identical,
the core choice is *not* part of a run's identity: it lives in the
RunRecord envelope, never the payload, and the same config produces the
same ``run_id`` on every core.

Resolution order (mirrors ``REPRO_SWEEP_WORKERS``):

1. an explicit ``core=`` argument,
2. the active :func:`use_core` context (how the CLI threads ``--core``
   through experiment modules without touching their signatures),
3. the ``REPRO_SIM_CORE`` environment variable,
4. ``"object"``.
"""

import os
from contextlib import contextmanager

#: Valid values for the ``core`` knob.
CORES = ("object", "fast", "numpy")

#: Environment variable overriding the default core.
CORE_ENV = "REPRO_SIM_CORE"

_ACTIVE: list = []


def _validate(core: str, source: str) -> str:
    if core not in CORES:
        raise ValueError(
            f"unknown simulation core {core!r} (from {source}); "
            f"choose from {CORES}"
        )
    return core


def resolve_core(core=None) -> str:
    """Resolve the core knob: argument > context > env > ``object``."""
    if core is not None:
        return _validate(core, "argument")
    if _ACTIVE:
        return _ACTIVE[-1]
    env = os.environ.get(CORE_ENV, "").strip().lower()
    if env:
        return _validate(env, CORE_ENV)
    return "object"


@contextmanager
def use_core(core):
    """Install ``core`` as the default for the dynamic extent.

    ``None`` is a no-op (so callers can pass an optional knob through
    unconditionally).  The context is resolved in the *calling*
    process: parallel sweeps capture the resolved core in the parent
    and ship it to workers, so ``use_core`` composes with
    ``workers > 1``.
    """
    if core is None:
        yield
        return
    _ACTIVE.append(_validate(core, "use_core"))
    try:
        yield
    finally:
        _ACTIVE.pop()
