"""Differential-equivalence harness: object core vs fast kernels.

The fast cores are only trustworthy because they are *checkable*: the
object-model loop in :mod:`repro.sim.driver` stays the reference, and
this module replays the same (trace, predictor, options) point through
both paths and compares per-branch correctness flags bit for bit.  On
a mismatch the report names the predictor, the core and the **first
diverging branch index**, which is the piece of information that
actually localises a kernel bug (aggregate counts only say "something,
somewhere").

Used by ``tests/test_fastcore_differential.py`` across the whole
workload suite, and handy interactively when writing a new kernel.
"""

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.sim.driver import SimOptions, SimResult, simulate


@dataclass
class DivergenceReport:
    """Outcome of one object-vs-fast differential comparison."""

    predictor: str
    workload: str
    core: str  #: the fast core that was checked ("fast" or "numpy")
    matches: bool
    #: branch index of the first differing correctness flag
    #: (``None`` when the cores agree branch for branch)
    first_divergence: Optional[int]
    object_metrics: dict
    fast_metrics: dict

    def summary(self) -> str:
        if self.matches:
            return (
                f"{self.predictor} on {self.workload}: object and "
                f"{self.core} cores agree on every branch"
            )
        where = (
            f"first divergence at branch {self.first_divergence}"
            if self.first_divergence is not None
            else "aggregate metrics differ"
        )
        return (
            f"{self.predictor} on {self.workload}: {self.core} core "
            f"diverges from object core ({where})"
        )


def _first_flag_divergence(
    ref: SimResult, got: SimResult
) -> Optional[int]:
    for name in ("correct", "squashed", "misfetch"):
        a = getattr(ref.flags, name)
        b = getattr(got.flags, name)
        differ = np.nonzero(a != b)[0]
        if differ.size:
            return int(differ[0])
    return None


def differential_check(
    trace,
    predictor_factory: Callable,
    options: SimOptions = SimOptions(),
    core: str = "fast",
    kernel=None,
) -> DivergenceReport:
    """Replay one point on the object core and on ``core``; compare.

    ``predictor_factory`` is called twice so each core trains fresh
    state.  ``kernel`` injects a pre-built (possibly corrupted) kernel
    into the fast path — the seeded-divergence tests use this to prove
    the harness actually localises disagreements.  The fast path runs
    with ``require=True``: a silent backend fallback would make the
    check vacuous.
    """
    from repro.sim import fastcore

    opts = replace(options, record_flags=True)
    ref = simulate(trace, predictor_factory(), opts)
    got = fastcore.run_fast(
        trace,
        predictor_factory(),
        opts,
        core=core,
        kernel=kernel,
        require=True,
    )
    first = _first_flag_divergence(ref, got)
    ref_metrics = ref.headline_metrics()
    got_metrics = got.headline_metrics()
    matches = (
        first is None
        and ref_metrics == got_metrics
        and ref.per_class == got.per_class
    )
    return DivergenceReport(
        predictor=ref.predictor,
        workload=ref.workload,
        core=core,
        matches=matches,
        first_divergence=first,
        object_metrics=ref_metrics,
        fast_metrics=got_metrics,
    )
