"""Scalar replay loops over pre-decoded event streams.

Three loops, from hottest to most general:

* :func:`_replay_table_uniform` — every event reads then trains one
  counter (the common no-SFP, no-delay case).  Pure list indexing on
  ints; no attribute lookups, no allocation beyond the mispredict list.
* :func:`_replay_table_flags` — same tables, but events carry read /
  transition flags (squash train-PHT events are transition-only;
  delayed-update mode splits reads from their transitions).
* :func:`_replay_generic` — drives any kernel through the scalar ABI
  (``predict``/``train``); the fallback for kernels without a
  vectorised index (the local kernel gets a specialised variant).

Every loop returns the *event positions* that mispredicted; the caller
maps positions to branch indices through the plan's ``ev_branch`` array
and builds all statistics vectorised.
"""

import numpy as np

from repro.sim.fastcore.decode import ReplayPlan
from repro.sim.fastcore.kernels import LocalKernel


def _replay_table_uniform(table, idxs, takens):
    mis = []
    add = mis.append
    k = 0
    for i, t in zip(idxs, takens):
        value = table[i]
        if t:
            if value < 2:
                add(k)
            if value < 3:
                table[i] = value + 1
        else:
            if value >= 2:
                add(k)
            if value:
                table[i] = value - 1
        k += 1
    return mis


def _replay_table_flags(table, idxs, takens, reads, transs):
    mis = []
    add = mis.append
    k = 0
    for i, t in zip(idxs, takens):
        value = table[i]
        if reads[k] and (value >= 2) != t:
            add(k)
        if transs[k]:
            if t:
                if value < 3:
                    table[i] = value + 1
            elif value:
                table[i] = value - 1
        k += 1
    return mis


def _replay_local(kernel, pcs, takens, reads, transs):
    table = kernel.table
    histories = kernel.histories
    tmask = kernel.mask
    lmask = kernel.local_mask
    hmask = kernel.history_mask
    mis = []
    add = mis.append
    k = 0
    for pc, t in zip(pcs, takens):
        slot = pc & lmask
        local = histories[slot] & hmask
        idx = local & tmask
        if reads[k] and (table[idx] >= 2) != t:
            add(k)
        if transs[k]:
            value = table[idx]
            if t:
                if value < 3:
                    table[idx] = value + 1
            elif value:
                table[idx] = value - 1
            histories[slot] = (local << 1) | t
        k += 1
    return mis


def _replay_generic(kernel, pcs, ghrs, takens, reads, transs):
    predict = kernel.predict
    train = kernel.train
    mis = []
    add = mis.append
    k = 0
    for pc, t in zip(pcs, takens):
        if reads[k] and predict(pc, ghrs[k])[0] != t:
            add(k)
        if transs[k]:
            train(pc, ghrs[k], t)
        k += 1
    return mis


def fast_replay(kernel, plan: ReplayPlan) -> np.ndarray:
    """Replay the plan through ``kernel``; mispredicted branch indices.

    Mutates the kernel's tables (so state round-trips match the object
    predictor's trained state event for event).
    """
    ev_branch = plan.ev_branch
    takens = plan.taken[ev_branch].tolist()
    if getattr(kernel, "batchable", False):
        idxs = kernel.batch_index(
            plan.pc[ev_branch], plan.ghr[ev_branch]
        ).tolist()
        if plan.uniform:
            mis = _replay_table_uniform(kernel.table, idxs, takens)
        else:
            mis = _replay_table_flags(
                kernel.table, idxs, takens,
                plan.ev_read.tolist(), plan.ev_trans.tolist(),
            )
    else:
        pcs = plan.pc[ev_branch].tolist()
        reads = plan.ev_read.tolist()
        transs = plan.ev_trans.tolist()
        if isinstance(kernel, LocalKernel):
            mis = _replay_local(kernel, pcs, takens, reads, transs)
        else:
            ghrs = plan.ghr[ev_branch].tolist()
            mis = _replay_generic(
                kernel, pcs, ghrs, takens, reads, transs
            )
    if not mis:
        return np.zeros(0, dtype=np.int64)
    return ev_branch[np.asarray(mis, dtype=np.int64)]
