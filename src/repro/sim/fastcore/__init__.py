"""Flat-kernel fast simulation core.

``repro.sim.fastcore`` replays pre-decoded branch streams through
allocation-free predictor kernels, bit-identically to the reference
object-model loop in :mod:`repro.sim.driver` (the differential suite in
``tests/test_fastcore_differential.py`` enforces the equivalence over
the whole workload suite).  See ``docs/fast-core.md`` for the kernel
ABI, the pre-decode layout and how to add a kernel.

Entry point: :func:`run_fast`, reached through
``simulate(..., core="fast"|"numpy")``.  The object core remains the
reference and the only path for predictors without a kernel, for BTB
modelling and for profiler collectors — ``simulate`` falls back
automatically (see :func:`supported`).
"""

import time

import numpy as np

from repro import telemetry
from repro.sim.driver import BranchFlags, SimOptions, SimResult
from repro.sim.fastcore.batch import batch_replay, batch_supported
from repro.sim.fastcore.decode import BranchTrace, ReplayPlan, build_plan
from repro.sim.fastcore.differential import (
    DivergenceReport,
    differential_check,
)
from repro.sim.fastcore.kernels import (
    KERNEL_BUILDERS,
    KernelError,
    kernel_from_predictor,
    kernelizable,
)
from repro.sim.fastcore.replay import fast_replay
from repro.sim.stats import ClassStats
from repro.trace.container import BranchClass

__all__ = [
    "BranchTrace",
    "DivergenceReport",
    "KERNEL_BUILDERS",
    "KernelError",
    "ReplayPlan",
    "batch_replay",
    "batch_supported",
    "build_plan",
    "differential_check",
    "fast_replay",
    "kernel_from_predictor",
    "kernelizable",
    "run_fast",
    "supported",
]


def supported(predictor, options: SimOptions, collector=None) -> bool:
    """Can the fast cores run this point exactly?

    BTB modelling and profiler collectors are object-core-only; so is
    any predictor without a registered kernel (static, perfect,
    tournament, perceptron, TAGE).
    """
    return (
        collector is None
        and options.btb is None
        and kernelizable(predictor)
    )


_PLAN_CACHE_LIMIT = 8


def _plan_for(trace, options: SimOptions) -> ReplayPlan:
    """Build (or reuse) the replay plan for ``(trace, options)``.

    Pre-decode depends only on the trace and the simulation options,
    never on the predictor, so a sweep grid replaying one workload
    under many predictors decodes it once.  The cache lives on the
    trace object and dies with it; a small cap guards against
    many-option grids pinning plans for the trace's whole lifetime.
    """
    cache = trace.__dict__.setdefault("_fastcore_plans", {})
    key = repr(options)
    plan = cache.get(key)
    if plan is None:
        plan = build_plan(trace, options)
        while len(cache) >= _PLAN_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = plan
    return plan


def run_fast(
    trace,
    predictor,
    options: SimOptions = SimOptions(),
    core: str = "fast",
    kernel=None,
    require: bool = False,
) -> SimResult:
    """Simulate on a flat kernel; bit-identical to the object core.

    ``kernel`` overrides the fresh kernel built from ``predictor``
    (the differential harness uses this to inject corrupted state).
    ``core="numpy"`` uses the batched backend when the kernel supports
    it, silently dropping to the scalar fast loop otherwise — unless
    ``require`` is set, in which case the mismatch raises.
    """
    if core not in ("fast", "numpy"):
        raise ValueError(f"run_fast cannot execute core {core!r}")
    if kernel is None:
        kernel = kernel_from_predictor(predictor)
    start = time.perf_counter()
    # Trace-only annotation (no registry instruments): the fastcore.*
    # counter set below must stay identical with tracing on or off.
    with telemetry.trace_span(
        "fastcore.replay",
        workload=trace.meta.workload or "<trace>",
        kernel=kernel.name,
    ):
        plan = _plan_for(trace, options)
        used = core
        if core == "numpy" and not batch_supported(kernel):
            if require:
                raise KernelError(
                    f"kernel {kernel.name} has no numpy backend"
                )
            used = "fast"
        if used == "numpy":
            mis = batch_replay(kernel, plan)
        else:
            mis = fast_replay(kernel, plan)
    wall = time.perf_counter() - start

    n = plan.n
    mispredictions = int(mis.shape[0])
    squash = plan.squash
    squashed = int(squash.sum()) if squash is not None else 0

    branch_counts = np.bincount(plan.cls, minlength=3)
    mis_counts = np.bincount(plan.cls[mis], minlength=3)
    if squash is not None:
        squash_counts = np.bincount(plan.cls[squash], minlength=3)
    else:
        squash_counts = np.zeros(3, dtype=np.int64)
    per_class = {
        branch_class: ClassStats(
            branches=int(branch_counts[int(branch_class)]),
            mispredictions=int(mis_counts[int(branch_class)]),
            squashed=int(squash_counts[int(branch_class)]),
        )
        for branch_class in (
            BranchClass.NORMAL, BranchClass.REGION, BranchClass.LOOP
        )
    }

    sfp = options.sfp
    if telemetry.enabled():
        # Mirror the driver's end-of-run counters exactly, so merged
        # sweep registries are identical across cores; then add the
        # fast-core extras.
        registry = telemetry.get_registry()
        registry.counter("sim.runs").inc()
        registry.counter("sim.instructions").inc(plan.instructions)
        registry.counter("sim.branches").inc(n)
        registry.counter("sim.predicts").inc(n - squashed)
        updates = (
            plan.applied_updates
            if options.delayed_update
            else n - squashed
        )
        if sfp is not None and sfp.update_pht:
            updates += squashed
        registry.counter("sim.updates").inc(updates)
        registry.counter("sim.mispredictions").inc(mispredictions)
        registry.counter("sim.squashed").inc(squashed)
        registry.counter("sim.misfetches").inc(0)
        for branch_class, stats in per_class.items():
            prefix = f"sim.class.{branch_class.name.lower()}"
            registry.counter(f"{prefix}.branches").inc(stats.branches)
            registry.counter(f"{prefix}.mispredictions").inc(
                stats.mispredictions
            )
            registry.counter(f"{prefix}.squashed").inc(stats.squashed)
        registry.counter(f"sim.core.{used}").inc()
        if wall > 0.0:
            registry.gauge("fastcore.replay_branches_per_second").set(
                n / wall
            )

    flags = None
    if options.record_flags:
        correct = np.ones(n, dtype=bool)
        correct[mis] = False
        flags = BranchFlags(
            correct=correct,
            squashed=(
                squash.copy()
                if squash is not None
                else np.zeros(n, dtype=bool)
            ),
            misfetch=np.zeros(n, dtype=bool),
        )

    return SimResult(
        predictor=predictor.name,
        options=options,
        workload=plan.workload,
        instructions=plan.instructions,
        branches=n,
        mispredictions=mispredictions,
        squashed=squashed,
        per_class=per_class,
        misfetches=0,
        flags=flags,
        attribution=None,
    )
