"""Flat predictor kernels: ints in, ints out, raw list tables.

A kernel is the allocation-free counterpart of one
:class:`~repro.predictors.base.BranchPredictor`: its state is plain
Python lists of small ints (picklable, pokeable, trivially diffable) and
its scalar ABI works entirely on integers:

* ``predict(pc, ghist) -> (pred, idx)`` — predicted direction (0/1) and
  the state index the prediction read.
* ``train(pc, ghist, taken) -> idx`` — full update path: recompute the
  index from the *stored* predict-time history (exactly what the
  reference driver passes to ``BranchPredictor.update``), apply the
  saturating-counter transition plus any kernel side effects (the local
  kernel shifts its private history here), and return the index touched.

Table-indexed kernels additionally expose ``batch_index(pc, ghr)``
(vectorised index computation over numpy arrays), which is what both the
specialised fast replay loops and the numpy backend consume.  The squash
false-path filter and predicate global update are *not* kernels: they
act on the history stream and the squash mask, which the pre-decode pass
in :mod:`repro.sim.fastcore.decode` materialises before any kernel runs.

Building a kernel from a predictor copies its *configuration*, not its
trained state: fresh tables initialised exactly as the object
constructors initialise theirs (2-bit counters at weakly-not-taken 1),
matching how sweeps hand every grid point a fresh predictor.
"""

import numpy as np

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gselect import GSelectPredictor
from repro.predictors.twolevel import GAgPredictor, LocalPredictor


class KernelError(ValueError):
    """No flat kernel models the given predictor."""


class TableKernel:
    """Shared shape of the four purely table-indexed kernels."""

    #: numpy backend eligibility (the local kernel opts out)
    batchable = True

    def __init__(self, entries: int, name: str):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.table = [1] * entries
        self.mask = entries - 1
        self.name = name

    # -- scalar ABI ----------------------------------------------------------

    def index(self, pc: int, ghist: int) -> int:
        raise NotImplementedError

    def predict(self, pc: int, ghist: int):
        idx = self.index(pc, ghist)
        return (1 if self.table[idx] >= 2 else 0, idx)

    def train(self, pc: int, ghist: int, taken: int) -> int:
        idx = self.index(pc, ghist)
        value = self.table[idx]
        if taken:
            if value < 3:
                self.table[idx] = value + 1
        elif value > 0:
            self.table[idx] = value - 1
        return idx

    # -- vectorised index ----------------------------------------------------

    def batch_index(self, pc: np.ndarray, ghr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- state ---------------------------------------------------------------

    def state(self) -> dict:
        return {"table": list(self.table)}

    def load_state(self, state: dict) -> None:
        table = list(state["table"])
        if len(table) != self.mask + 1:
            raise ValueError("state table size mismatch")
        self.table = table


class BimodalKernel(TableKernel):
    def __init__(self, entries: int):
        super().__init__(entries, f"bimodal-{entries}")

    def index(self, pc: int, ghist: int) -> int:
        return pc & self.mask

    def batch_index(self, pc, ghr):
        return (pc.astype(np.uint64) & np.uint64(self.mask)).astype(
            np.int64
        )


class GShareKernel(TableKernel):
    def __init__(self, entries: int, history_bits: int):
        super().__init__(entries, f"gshare-{entries}/h{history_bits}")
        self.history_mask = (1 << history_bits) - 1

    def index(self, pc: int, ghist: int) -> int:
        return (pc ^ (ghist & self.history_mask)) & self.mask

    def batch_index(self, pc, ghr):
        hist = ghr & np.uint64(self.history_mask)
        return (
            (pc.astype(np.uint64) ^ hist) & np.uint64(self.mask)
        ).astype(np.int64)


class GSelectKernel(TableKernel):
    def __init__(self, entries: int, history_bits: int, pc_bits: int):
        super().__init__(entries, f"gselect-{entries}/h{history_bits}")
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.pc_mask = (1 << pc_bits) - 1

    def index(self, pc: int, ghist: int) -> int:
        return (
            ((pc & self.pc_mask) << self.history_bits)
            | (ghist & self.history_mask)
        ) & self.mask

    def batch_index(self, pc, ghr):
        upper = (pc.astype(np.uint64) & np.uint64(self.pc_mask)) << (
            np.uint64(self.history_bits)
        )
        lower = ghr & np.uint64(self.history_mask)
        return ((upper | lower) & np.uint64(self.mask)).astype(np.int64)


class GAgKernel(TableKernel):
    def __init__(self, entries: int):
        super().__init__(entries, f"gag-{entries}")

    def index(self, pc: int, ghist: int) -> int:
        return ghist & self.mask

    def batch_index(self, pc, ghr):
        return (ghr & np.uint64(self.mask)).astype(np.int64)


class LocalKernel:
    """PAg-style local kernel: per-PC history feeding a pattern table.

    The pattern index depends on private history mutated at train time,
    so indices cannot be precomputed from the global history stream —
    the kernel replays through its own scalar loop and opts out of the
    numpy backend.
    """

    batchable = False

    def __init__(self, entries: int, local_entries: int,
                 history_bits: int):
        self.table = [1] * entries
        self.mask = entries - 1
        self.histories = [0] * local_entries
        self.local_mask = local_entries - 1
        self.history_mask = (1 << history_bits) - 1
        self.name = f"local-{entries}/l{local_entries}x{history_bits}"

    def index(self, pc: int, ghist: int) -> int:
        return self.histories[pc & self.local_mask] & self.history_mask

    def predict(self, pc: int, ghist: int):
        idx = self.index(pc, ghist)
        return (1 if self.table[idx & self.mask] >= 2 else 0, idx)

    def train(self, pc: int, ghist: int, taken: int) -> int:
        slot = pc & self.local_mask
        local = self.histories[slot] & self.history_mask
        idx = local & self.mask
        value = self.table[idx]
        if taken:
            if value < 3:
                self.table[idx] = value + 1
        elif value > 0:
            self.table[idx] = value - 1
        self.histories[slot] = (local << 1) | (1 if taken else 0)
        return idx

    def state(self) -> dict:
        return {
            "table": list(self.table),
            "histories": list(self.histories),
        }

    def load_state(self, state: dict) -> None:
        table = list(state["table"])
        histories = list(state["histories"])
        if len(table) != self.mask + 1:
            raise ValueError("state table size mismatch")
        if len(histories) != self.local_mask + 1:
            raise ValueError("state history table size mismatch")
        self.table = table
        self.histories = histories


def _from_bimodal(p: BimodalPredictor) -> BimodalKernel:
    return BimodalKernel(p.entries)


def _from_gshare(p: GSharePredictor) -> GShareKernel:
    return GShareKernel(p.entries, p.history_bits)


def _from_gselect(p: GSelectPredictor) -> GSelectKernel:
    return GSelectKernel(p.entries, p.history_bits, p.pc_bits)


def _from_gag(p: GAgPredictor) -> GAgKernel:
    return GAgKernel(p.entries)


def _from_local(p: LocalPredictor) -> LocalKernel:
    return LocalKernel(p.entries, p.local_entries, p.history_bits)


#: predictor class -> kernel builder.  Exact classes only: a subclass
#: may override behaviour the kernel does not model, so it falls back to
#: the object core instead of silently diverging.
KERNEL_BUILDERS = {
    BimodalPredictor: _from_bimodal,
    GSharePredictor: _from_gshare,
    GSelectPredictor: _from_gselect,
    GAgPredictor: _from_gag,
    LocalPredictor: _from_local,
}


def kernelizable(predictor) -> bool:
    """Does a flat kernel model this predictor exactly?"""
    return type(predictor) in KERNEL_BUILDERS


def kernel_from_predictor(predictor):
    """A fresh kernel mirroring ``predictor``'s configuration."""
    builder = KERNEL_BUILDERS.get(type(predictor))
    if builder is None:
        raise KernelError(
            f"no flat kernel for {type(predictor).__name__} "
            f"({getattr(predictor, 'name', '?')}); the object core is "
            "the only path for this predictor"
        )
    return builder(predictor)
