"""Numpy-batched replay for table-indexed kernels.

The serial dependency in table replay is per *entry*, not per branch:
events touching different counters never interact.  So the backend
groups the event stream by table index and resolves each entry's
counter walk with a segmented scan instead of a Python loop:

1. Sort events by (table index, stream position) — a composite integer
   key on one ``np.sort`` reproduces a stable grouping at a fraction of
   ``argsort(kind="stable")``'s cost.
2. Represent each event's effect on its counter as a *clamped add*
   ``f(x) = clip(x + a, lo, hi)``.  The taken/not-taken transitions of a
   2-bit saturating counter generate only 18 distinct functions under
   composition (including the identity, which read-only events use), so
   each function is a small int and composition is one 18x18 lookup.
3. A Hillis–Steele inclusive scan over function ids, segmented at index
   boundaries, yields each event's accumulated prefix function; applied
   exclusively to the entry's starting counter value it gives the exact
   state every read observed.  Constant functions absorb under
   composition (``const . g = const``), so saturated prefixes drop out
   of the scan's active set — strongly biased entries finish in a pass
   or two.
4. Predictions, mispredict positions and the final table state all fall
   out vectorised.

Bit-identical to the scalar loops by construction; the differential
suite checks it against the object core anyway.
"""

import numpy as np

# -- the function monoid of a 2-bit saturating counter ------------------------


def _closure():
    """Enumerate compositions of {identity, taken, not-taken}.

    Functions are represented by their image over the domain (0, 1, 2,
    3).  Returns (COMP, IMG, CONST, ident, taken_id, not_taken_id) where
    ``COMP[g, f]`` is "apply f, then g".
    """
    identity = (0, 1, 2, 3)
    taken = (1, 2, 3, 3)
    not_taken = (0, 0, 1, 2)
    funcs = [identity, taken, not_taken]
    index = {f: i for i, f in enumerate(funcs)}
    frontier = list(funcs)
    while frontier:
        new = []
        for g in frontier:
            for f in list(funcs):
                composed = tuple(g[f[x]] for x in range(4))
                if composed not in index:
                    index[composed] = len(funcs)
                    funcs.append(composed)
                    new.append(composed)
        frontier = new
    count = len(funcs)
    comp = np.zeros((count, count), dtype=np.int8)
    for gi, g in enumerate(funcs):
        for fi, f in enumerate(funcs):
            comp[gi, fi] = index[tuple(g[f[x]] for x in range(4))]
    img = np.array(funcs, dtype=np.uint8)
    const = np.array(
        [len(set(f)) == 1 for f in funcs], dtype=bool
    )
    return comp, img, const, index[identity], index[taken], index[
        not_taken
    ]


_COMP, _IMG, _CONST, _IDENT, _TAKEN, _NOT_TAKEN = _closure()


def _stable_group(idx: np.ndarray):
    """Events regrouped by table index, original order within groups.

    Returns (order, sorted_idx).  Uses one composite-key ``np.sort``
    when the key fits 63 bits, else a stable argsort.
    """
    count = idx.shape[0]
    pos_bits = max(1, int(count - 1).bit_length())
    max_idx = int(idx.max())
    if max_idx.bit_length() + pos_bits < 63:
        key = (idx.astype(np.int64) << pos_bits) | np.arange(
            count, dtype=np.int64
        )
        key = np.sort(key)
        order = key & ((1 << pos_bits) - 1)
        return order, key >> pos_bits
    order = np.argsort(idx, kind="stable")
    return order, idx[order]


def batch_supported(kernel) -> bool:
    return bool(getattr(kernel, "batchable", False))


def batch_replay(kernel, plan) -> np.ndarray:
    """Vectorised replay; mispredicted branch indices, ascending.

    Mutates ``kernel.table`` to the exact post-replay state the scalar
    loops would leave (every entry's full composition applied to its
    starting value), so warm-start and pickle behaviour match.
    """
    ev_branch = plan.ev_branch
    count = int(ev_branch.shape[0])
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    idx = kernel.batch_index(plan.pc[ev_branch], plan.ghr[ev_branch])
    taken = plan.taken[ev_branch]

    order, sorted_idx = _stable_group(idx)
    taken_sorted = taken[order] != 0
    if plan.uniform:
        funcs = np.where(taken_sorted, _TAKEN, _NOT_TAKEN).astype(
            np.int8
        )
    else:
        funcs = np.where(
            plan.ev_trans[order] != 0,
            np.where(taken_sorted, _TAKEN, _NOT_TAKEN),
            _IDENT,
        ).astype(np.int8)

    seg_start = np.empty(count, dtype=bool)
    seg_start[0] = True
    np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=seg_start[1:])
    positions = np.arange(count, dtype=np.int64)
    run_start = np.maximum.accumulate(
        np.where(seg_start, positions, 0)
    )
    pos_in_seg = positions - run_start

    # Inclusive segmented scan over function ids.  The first passes run
    # contiguously over the whole array (almost every prefix is still
    # live, and slicing beats gathers); later passes keep an explicit
    # active set, dropping constant prefixes — composing anything
    # *before* a constant cannot change it, and composing *with* one
    # makes the reader constant too, so pruned values stay exact and
    # strongly biased entries (most of a real table) finish early.
    flat = funcs
    comp = _COMP
    const = _CONST
    step = 1
    while step <= 2 and step < count:
        composed = comp[flat[step:], flat[:-step]]
        np.copyto(flat[step:], composed, where=pos_in_seg[step:] >= step)
        step <<= 1
    active = np.flatnonzero((pos_in_seg >= step) & ~const[flat])
    while active.size:
        flat[active] = comp[flat[active], flat[active - step]]
        step <<= 1
        active = active[
            (pos_in_seg[active] >= step) & ~const[flat[active]]
        ]

    # Exclusive shift within segments: the state a read observes is the
    # prefix *before* it, applied to the entry's starting value.
    excl = np.empty(count, dtype=np.int8)
    excl[0] = _IDENT
    excl[1:] = np.where(seg_start[1:], _IDENT, flat[:-1])

    table = np.asarray(kernel.table, dtype=np.uint8)
    start_value = table[sorted_idx]
    state_before = _IMG[excl, start_value]

    mispredicted = (state_before >= 2) != taken_sorted
    if not plan.uniform:
        mispredicted &= plan.ev_read[order] != 0

    # Final table state: the last event of each segment carries the
    # entry's full composition.
    seg_end = np.empty(count, dtype=bool)
    seg_end[-1] = True
    seg_end[:-1] = seg_start[1:]
    table[sorted_idx[seg_end]] = _IMG[
        flat[seg_end], start_value[seg_end]
    ]
    kernel.table = table.tolist()

    return np.sort(ev_branch[order[mispredicted]])
