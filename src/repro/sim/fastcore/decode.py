"""Pre-decode: lower a trace + options into a flat replay plan.

The key observation that makes vectorised replay possible: in
trace-driven simulation the global history register's evolution is
*prediction-independent* — actual outcomes are shifted in at predict
time and predicate defines at their availability points, neither of
which depends on what any predictor said.  So the entire history stream,
every branch's predict-time history value, the squash mask and the
delayed-update schedule can be computed up front with numpy; only the
counter-table state remains serial, and that is what the replay loops
(:mod:`repro.sim.fastcore.replay`) and the segmented-scan backend
(:mod:`repro.sim.fastcore.batch`) handle.

Two layers:

* :class:`BranchTrace` — the option-independent structure-of-arrays
  branch stream (the seed of the ROADMAP's external trace format).
* :class:`ReplayPlan` — one (BranchTrace, SimOptions) decode: per-branch
  predict-time history values, squash mask, branch classes, and the
  merged *event stream* (reads, delayed-update applications, squash
  train-PHT updates) in exactly the order the reference driver would
  perform them.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.driver import SimOptions
from repro.trace.container import Trace

_U64 = np.uint64
_FULL64 = _U64(0xFFFFFFFFFFFFFFFF)


@dataclass
class BranchTrace:
    """Option-independent flat branch stream of one executed workload.

    Branch arrays (fetch order): ``pc`` (static index), ``idx`` (dynamic
    instruction index), ``taken`` (outcome), ``guard`` (qualifying
    predicate, 0 = p0), ``guard_def`` (dynamic index of the guard's
    defining write, -1 if never written), ``cls``
    (:class:`~repro.trace.container.BranchClass` value).  Define arrays
    (execution order): ``d_idx``, ``d_value``, ``d_pred``.
    """

    pc: np.ndarray
    idx: np.ndarray
    taken: np.ndarray
    guard: np.ndarray
    guard_def: np.ndarray
    cls: np.ndarray
    d_idx: np.ndarray
    d_value: np.ndarray
    d_pred: np.ndarray
    workload: str = ""
    instructions: int = 0

    @classmethod
    def from_trace(cls, trace: Trace) -> "BranchTrace":
        return cls(
            pc=trace.b_pc,
            idx=trace.b_idx,
            taken=trace.b_taken,
            guard=trace.b_guard,
            guard_def=trace.b_guard_def,
            cls=trace.branch_classes(),
            d_idx=trace.d_idx,
            d_value=trace.d_value,
            d_pred=trace.d_pred,
            workload=trace.meta.workload or "<trace>",
            instructions=trace.meta.instructions,
        )

    @property
    def num_branches(self) -> int:
        return int(self.pc.shape[0])


@dataclass
class ReplayPlan:
    """Everything replay needs, decoded once per (trace, options)."""

    options: SimOptions
    workload: str
    instructions: int
    n: int
    pc: np.ndarray  #: int64, per branch
    taken: np.ndarray  #: uint8, per branch
    ghr: np.ndarray  #: uint64, predict-time history value per branch
    cls: np.ndarray  #: int8, per branch
    squash: Optional[np.ndarray]  #: bool per branch, None without SFP
    # -- event stream, in reference-driver order -------------------------
    ev_branch: np.ndarray  #: int64, branch each event belongs to
    ev_read: np.ndarray  #: uint8, event predicts (and counts stats)
    ev_trans: np.ndarray  #: uint8, event applies a counter transition
    uniform: bool  #: every event is read+trans (the common tight case)
    applied_updates: int  #: delayed updates that actually applied


def _squash_mask(bt: BranchTrace, options: SimOptions):
    """Squash mask (:class:`~repro.pipeline.availability.AvailabilityModel`
    semantics) computed from the flat arrays."""
    sfp = options.sfp
    if sfp is None:
        return None
    resolved = (bt.guard_def >= 0) & (
        bt.idx - bt.guard_def >= options.distance
    )
    guarded = bt.guard != 0
    if sfp.squash_known_true:
        return resolved & guarded
    return resolved & ~bt.taken.astype(bool) & guarded


def _pgu_defines(bt: BranchTrace, options: SimOptions):
    """(visible-at-branch positions, bit values) of the kept defines."""
    pgu = options.pgu
    if pgu is None:
        return None
    delay = options.distance if pgu.delay is None else pgu.delay
    d_idx = bt.d_idx
    d_value = bt.d_value
    if pgu.which == "guards_only":
        guard_preds = np.unique(bt.guard[bt.guard > 0]).astype(
            bt.d_pred.dtype
        )
        keep = np.isin(bt.d_pred, guard_preds)
        d_idx = d_idx[keep]
        d_value = d_value[keep]
    # First branch whose fetch sees the define: d_idx + delay <= b_idx.
    visible_at = np.searchsorted(bt.idx, d_idx + delay, side="left")
    in_range = visible_at < bt.num_branches
    return visible_at[in_range], d_value[in_range]


def _history_values(bt: BranchTrace, options: SimOptions,
                    squash: Optional[np.ndarray]) -> np.ndarray:
    """Per-branch predict-time history, via one packed bit stream.

    The stream interleaves predicate-define bits (at their availability
    points) with branch-outcome bits (squashed branches emit only when
    ``sfp.update_history``), exactly as the driver shifts them.  Each
    branch's value is then a 64-bit window extracted from the *reversed*
    packed stream — the register's LSB is the most recent bit — masked
    to ``history_bits``.
    """
    n = bt.num_branches
    length = options.history_bits
    lmask = _FULL64 if length >= 64 else _U64((1 << length) - 1)
    if n == 0:
        return np.zeros(0, dtype=np.uint64)

    if squash is None:
        emits = np.ones(n, dtype=bool)
    elif options.sfp.update_history:
        emits = np.ones(n, dtype=bool)
    else:
        emits = ~squash
    # emits_excl[i] = number of emitting branches with index < i.
    emits_excl = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(emits, out=emits_excl[1:])

    defines = _pgu_defines(bt, options)
    if defines is None:
        visible_at = np.zeros(0, dtype=np.int64)
        d_bits = np.zeros(0, dtype=bool)
    else:
        visible_at, d_bits = defines
    # defs_le[i] = defines shifted in by the time branch i predicts
    # (everything visible at or before i precedes i's own read).
    defs_le = np.searchsorted(visible_at, np.arange(n), side="right")

    m = int(visible_at.shape[0]) + int(emits_excl[n])
    bits = np.zeros(m, dtype=np.uint8)
    # Define k sits after the k-1 earlier defines and every emitting
    # branch fetched before its visibility point.
    def_slots = np.arange(visible_at.shape[0]) + emits_excl[visible_at]
    bits[def_slots] = d_bits
    emit_idx = np.flatnonzero(emits)
    bits[defs_le[emit_idx] + emits_excl[emit_idx]] = bt.taken[emit_idx]

    # h[i] = sum_t stream[r_i - 1 - t] << t  (newest bit at the LSB).
    # Reversing the stream turns every window into a contiguous
    # little-endian 64-bit load: h[i] = rev[m - r_i : m - r_i + 64].
    read_pos = defs_le + emits_excl[:n]
    packed = np.packbits(bits[::-1], bitorder="little")
    words = (m >> 6) + 2
    padded = np.zeros(words * 8, dtype=np.uint8)
    padded[: packed.shape[0]] = packed
    table = padded.view(np.uint64)

    start = (m - read_pos).astype(np.uint64)
    word = (start >> _U64(6)).astype(np.int64)
    shift = start & _U64(63)
    low = table[word] >> shift
    high_shift = (_U64(64) - shift) & _U64(63)
    high = np.where(
        shift == 0, _U64(0), table[word + 1] << high_shift
    )
    return (low | high) & lmask


def build_plan(trace, options: SimOptions) -> ReplayPlan:
    """Decode one (trace, options) pair into a :class:`ReplayPlan`."""
    bt = (
        trace
        if isinstance(trace, BranchTrace)
        else BranchTrace.from_trace(trace)
    )
    n = bt.num_branches
    squash = _squash_mask(bt, options)
    ghr = _history_values(bt, options, squash)
    taken = bt.taken.astype(np.uint8)
    pc = bt.pc.astype(np.int64)

    sfp = options.sfp
    train_squashed = sfp is not None and sfp.update_pht
    if squash is None:
        participates = np.ones(n, dtype=bool)
    else:
        participates = ~squash

    applied_updates = 0
    if not options.delayed_update:
        # One event per participating branch (read + transition); a
        # squashed branch appears as a transition-only event when the
        # filter still trains the PHT.
        if squash is None or (not train_squashed and not squash.any()):
            ev_branch = np.arange(n, dtype=np.int64)
            ev_read = np.ones(n, dtype=np.uint8)
            ev_trans = np.ones(n, dtype=np.uint8)
            uniform = True
        else:
            keep = participates | (squash if train_squashed else False)
            ev_branch = np.flatnonzero(keep).astype(np.int64)
            ev_read = participates[ev_branch].astype(np.uint8)
            ev_trans = np.ones(ev_branch.shape[0], dtype=np.uint8)
            uniform = bool(ev_read.all())
    else:
        # Delayed updates: reads stay at their branch; each enqueued
        # update applies just before the first later branch whose fetch
        # index reaches apply_at = idx + distance (pending updates drain
        # before that branch predicts).  Updates never reached by a
        # later branch stay pending forever, exactly like the driver's
        # queue at end of trace.  Squash train-PHT updates are immediate
        # even in delayed mode (the driver calls update() directly).
        read_idx = np.flatnonzero(participates).astype(np.int64)
        apply_at = bt.idx[read_idx] + options.distance
        target = np.searchsorted(bt.idx, apply_at, side="left")
        target = np.maximum(target, read_idx + 1)
        applies = target < n
        upd_idx = read_idx[applies]
        upd_target = target[applies]
        applied_updates = int(upd_idx.shape[0])
        if train_squashed and squash is not None:
            pht_idx = np.flatnonzero(squash).astype(np.int64)
        else:
            pht_idx = np.zeros(0, dtype=np.int64)
        ev_branch = np.concatenate([upd_idx, read_idx, pht_idx])
        ev_read = np.concatenate([
            np.zeros(upd_idx.shape[0], dtype=np.uint8),
            np.ones(read_idx.shape[0], dtype=np.uint8),
            np.zeros(pht_idx.shape[0], dtype=np.uint8),
        ])
        ev_trans = np.concatenate([
            np.ones(upd_idx.shape[0], dtype=np.uint8),
            np.zeros(read_idx.shape[0], dtype=np.uint8),
            np.ones(pht_idx.shape[0], dtype=np.uint8),
        ])
        # Order: by firing position, pending updates draining before the
        # read (or squash update) at the same branch; the stable sort
        # keeps the queue's FIFO order among updates sharing a position.
        pos = np.concatenate([upd_target, read_idx, pht_idx])
        own = np.concatenate([
            np.zeros(upd_idx.shape[0], dtype=np.int64),
            np.ones(read_idx.shape[0], dtype=np.int64),
            np.ones(pht_idx.shape[0], dtype=np.int64),
        ])
        order = np.argsort((pos << 1) | own, kind="stable")
        ev_branch = ev_branch[order]
        ev_read = ev_read[order]
        ev_trans = ev_trans[order]
        uniform = False

    return ReplayPlan(
        options=options,
        workload=bt.workload,
        instructions=bt.instructions,
        n=n,
        pc=pc,
        taken=taken,
        ghr=ghr,
        cls=bt.cls.astype(np.int8),
        squash=squash,
        ev_branch=ev_branch,
        ev_read=ev_read,
        ev_trans=ev_trans,
        uniform=uniform,
        applied_updates=applied_updates,
    )
