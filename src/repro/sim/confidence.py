"""Confidence-instrumented simulation (feeds experiment E14)."""

from repro.pipeline.availability import AvailabilityModel
from repro.pipeline.frontend import GlobalHistory
from repro.predictors.base import BranchPredictor
from repro.predictors.confidence import ConfidenceEstimator, ConfidenceResult
from repro.sim.driver import SimOptions
from repro.trace.container import Trace


def simulate_with_confidence(
    trace: Trace,
    predictor: BranchPredictor,
    estimator: ConfidenceEstimator,
    options: SimOptions = SimOptions(),
) -> ConfidenceResult:
    """Replay ``trace`` classifying every prediction's confidence.

    Squashed branches (when the options enable SFP) are *perfect*
    confidence; the estimator classifies the rest as high/low.  PGU (if
    enabled) augments the history both the predictor and the estimator
    index with.
    """
    availability = AvailabilityModel(options.distance)
    history = GlobalHistory(options.history_bits)
    sfp = options.sfp
    if sfp is None:
        squash_list = None
    elif sfp.squash_known_true:
        squash_list = (
            availability.guard_known_mask(trace) & (trace.b_guard != 0)
        ).tolist()
    else:
        squash_list = availability.squashable_mask(trace).tolist()

    if options.pgu is not None:
        delay = (
            options.distance
            if options.pgu.delay is None
            else options.pgu.delay
        )
        d_idx = trace.d_idx.tolist()
        d_value = trace.d_value.tolist()
    else:
        delay = 0
        d_idx = d_value = []
    num_defs = len(d_idx)

    b_pc = trace.b_pc.tolist()
    b_idx = trace.b_idx.tolist()
    b_taken = trace.b_taken.tolist()
    dptr = 0

    perfect = high = high_correct = low = low_correct = 0

    for i in range(len(b_pc)):
        j = b_idx[i]
        while dptr < num_defs and d_idx[dptr] + delay <= j:
            history.shift(d_value[dptr])
            dptr += 1
        pc = b_pc[i]
        taken = b_taken[i]
        if squash_list is not None and squash_list[i]:
            perfect += 1
            if sfp.update_pht:
                predictor.update(pc, history.bits, taken)
            if sfp.update_history:
                history.shift(taken)
            continue
        ghr = history.bits
        predicted = predictor.predict(pc, ghr)
        confident = estimator.is_confident(pc, ghr)
        correct = predicted == taken
        predictor.update(pc, ghr, taken)
        estimator.update(pc, ghr, correct)
        history.shift(taken)
        if confident:
            high += 1
            high_correct += int(correct)
        else:
            low += 1
            low_correct += int(correct)

    return ConfidenceResult(
        branches=len(b_pc),
        perfect=perfect,
        high=high,
        high_correct=high_correct,
        low=low,
        low_correct=low_correct,
    )
