"""Per-site misprediction analysis.

Identifies the static branch sites that contribute the most
mispredictions under a given configuration — the view an architect uses
to see *which* branches a mechanism fixed and which remain.  Returns
structured records; the CLI's ``hotspots`` command prints them alongside
the disassembled site.
"""

from dataclasses import dataclass
from typing import List

from repro.pipeline.availability import AvailabilityModel
from repro.pipeline.frontend import GlobalHistory
from repro.predictors.base import BranchPredictor
from repro.sim.driver import SimOptions
from repro.trace.container import Trace


@dataclass
class SiteStats:
    """Aggregate behaviour of one static branch site."""

    pc: int
    executions: int = 0
    taken: int = 0
    mispredictions: int = 0
    squashed: int = 0
    region_based: bool = False

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.executions if self.executions else 0.0
        )

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0


def per_site_stats(
    trace: Trace,
    predictor: BranchPredictor,
    options: SimOptions = SimOptions(),
) -> List[SiteStats]:
    """Simulate and aggregate per static branch site.

    A separate (slower, dict-building) loop from the main driver so the
    hot path stays lean; mechanics mirror
    :func:`repro.sim.driver.simulate` for the SFP/PGU features.
    """
    availability = AvailabilityModel(options.distance)
    history = GlobalHistory(options.history_bits)
    sfp = options.sfp
    if sfp is None:
        squash_list = None
    elif sfp.squash_known_true:
        squash_list = (
            availability.guard_known_mask(trace) & (trace.b_guard != 0)
        ).tolist()
    else:
        squash_list = availability.squashable_mask(trace).tolist()

    if options.pgu is not None:
        delay = (
            options.distance
            if options.pgu.delay is None
            else options.pgu.delay
        )
        d_idx = trace.d_idx.tolist()
        d_value = trace.d_value.tolist()
    else:
        delay = 0
        d_idx = d_value = []
    num_defs = len(d_idx)

    sites = {}
    b_pc = trace.b_pc.tolist()
    b_idx = trace.b_idx.tolist()
    b_taken = trace.b_taken.tolist()
    b_region = trace.b_region.tolist()
    dptr = 0

    for i in range(len(b_pc)):
        j = b_idx[i]
        while dptr < num_defs and d_idx[dptr] + delay <= j:
            history.shift(d_value[dptr])
            dptr += 1
        pc = b_pc[i]
        site = sites.get(pc)
        if site is None:
            site = SiteStats(pc=pc, region_based=bool(b_region[i]))
            sites[pc] = site
        taken = b_taken[i]
        site.executions += 1
        site.taken += int(taken)
        if squash_list is not None and squash_list[i]:
            site.squashed += 1
            if sfp.update_pht:
                predictor.update(pc, history.bits, taken)
            if sfp.update_history:
                history.shift(taken)
            continue
        predicted = predictor.predict(pc, history.bits)
        predictor.update(pc, history.bits, taken)
        history.shift(taken)
        if predicted != taken:
            site.mispredictions += 1

    return sorted(
        sites.values(), key=lambda s: s.mispredictions, reverse=True
    )


def top_hotspots(
    trace: Trace,
    predictor: BranchPredictor,
    options: SimOptions = SimOptions(),
    limit: int = 10,
) -> List[SiteStats]:
    """The ``limit`` worst sites by absolute mispredictions."""
    return per_site_stats(trace, predictor, options)[:limit]
