"""Per-site misprediction analysis.

Identifies the static branch sites that contribute the most
mispredictions under a given configuration — the view an architect uses
to see *which* branches a mechanism fixed and which remain.  Returns
structured records; the CLI's ``hotspots`` command prints them alongside
the disassembled site.

Since the profiler landed this is a thin view over
:class:`~repro.profiler.attribution.AttributionAggregator`: the trace is
replayed once through the real driver with an unsampled
:class:`~repro.profiler.collector.AggregatingCollector`, so per-site
accounting lives in exactly one place and hotspots see the driver's full
semantics (SFP, PGU — including ``guards_only`` filtering — delayed
update) instead of a hand-maintained mirror loop.
"""

from dataclasses import dataclass
from typing import List

from repro.predictors.base import BranchPredictor
from repro.profiler.collector import AggregatingCollector
from repro.profiler.spec import ProfileSpec
from repro.sim.driver import SimOptions, simulate
from repro.trace.container import Trace


@dataclass
class SiteStats:
    """Aggregate behaviour of one static branch site."""

    pc: int
    executions: int = 0
    taken: int = 0
    mispredictions: int = 0
    squashed: int = 0
    region_based: bool = False

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.executions if self.executions else 0.0
        )

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0


def per_site_stats(
    trace: Trace,
    predictor: BranchPredictor,
    options: SimOptions = SimOptions(),
) -> List[SiteStats]:
    """Simulate and aggregate per static branch site.

    One rate-1 profiled :func:`~repro.sim.driver.simulate` pass; sites
    come back sorted by absolute mispredictions (ties keep first-seen
    order, as the dynamic stream encounters them).
    """
    collector = AggregatingCollector(
        ProfileSpec(), workload=trace.meta.workload
    )
    simulate(trace, predictor, options, collector=collector)
    sites = [
        SiteStats(
            pc=record.pc,
            executions=record.executions,
            taken=record.taken,
            mispredictions=record.mispredictions,
            squashed=record.filtered,
            region_based=record.region_based,
        )
        for record in collector.aggregator.records()
    ]
    return sorted(sites, key=lambda s: s.mispredictions, reverse=True)


def top_hotspots(
    trace: Trace,
    predictor: BranchPredictor,
    options: SimOptions = SimOptions(),
    limit: int = 10,
) -> List[SiteStats]:
    """The ``limit`` worst sites by absolute mispredictions."""
    return per_site_stats(trace, predictor, options)[:limit]
