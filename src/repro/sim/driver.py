"""The trace-driven simulation loop.

:func:`simulate` replays a trace's branch stream through one predictor
under a front-end configuration: the availability distance ``D``, the
squash false-path filter, and predicate global update.  The driver owns
the global history register because the paper's mechanisms manipulate it;
predictors just consume the history value they are handed.

Event ordering: branches are processed in fetch order.  Before predicting
the branch at dynamic index ``j``, every predicate define that became
visible by ``j`` (``d_idx + delay <= j``) is shifted into history — this
interleaves predicate bits and branch outcomes in the order the front end
would see them.
"""

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import telemetry
from repro.pipeline.availability import DEFAULT_DISTANCE, AvailabilityModel
from repro.pipeline.btb import BTBConfig, BranchTargetBuffer
from repro.pipeline.frontend import GlobalHistory
from repro.predictors.base import BranchPredictor
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.pgu import PGUConfig
from repro.predictors.sfp import SFPConfig
from repro.predictors.static import StaticPredictor
from repro.profiler.events import (
    AVAIL_NEVER,
    CONF_PERFECT,
    CONF_UNKNOWN,
    PGUPath,
    PredictionEvent,
    SFPDecision,
)
from repro.sim.stats import ClassStats
from repro.trace.container import BranchClass, Trace

# Enum values pre-bound as ints: the profiled event path is inside the
# per-branch loop, where attribute lookups on IntEnum members cost real
# time at sampling rate 1.
_SFP_NOT_FILTERED = int(SFPDecision.NOT_FILTERED)
_SFP_FILTERED_CORRECT = int(SFPDecision.FILTERED_CORRECT)
_SFP_FILTERED_WRONG = int(SFPDecision.FILTERED_WRONG)
_PGU_OFF = int(PGUPath.OFF)
_PGU_UPDATE = int(PGUPath.UPDATE)
_PGU_INSERT = int(PGUPath.INSERT)


@dataclass(frozen=True)
class SimOptions:
    """Front-end configuration for one simulation run.

    ``delayed_update`` models trainer latency: pattern tables are updated
    only once the branch has resolved — ``distance`` dynamic instructions
    after its fetch — instead of instantly.  Global history still updates
    at predict time (it is speculative in hardware, and trace-driven
    simulation follows the correct path).
    """

    distance: int = DEFAULT_DISTANCE
    history_bits: int = 32
    sfp: Optional[SFPConfig] = None  #: None disables the squash filter
    pgu: Optional[PGUConfig] = None  #: None disables predicate update
    delayed_update: bool = False
    btb: Optional["BTBConfig"] = None  #: None models a perfect BTB
    #: record per-branch flags for the fetch simulator
    record_flags: bool = False

    def describe(self) -> str:
        parts = [f"D={self.distance}"]
        if self.sfp is not None:
            parts.append(self.sfp.describe())
        if self.pgu is not None:
            parts.append(self.pgu.describe())
        if self.delayed_update:
            parts.append("delayed-update")
        if self.btb is not None:
            parts.append(self.btb.describe())
        return ",".join(parts)


@dataclass
class BranchFlags:
    """Per-branch outcome flags for the fetch simulator."""

    correct: "np.ndarray"  #: prediction (or squash) matched the outcome
    squashed: "np.ndarray"  #: handled by the squash filter
    misfetch: "np.ndarray"  #: right direction, BTB had no target


@dataclass
class SimResult:
    """Outcome of one (trace, predictor, options) simulation."""

    predictor: str
    options: SimOptions
    workload: str
    instructions: int
    branches: int
    mispredictions: int
    squashed: int
    per_class: dict = field(default_factory=dict)
    #: direction was predicted taken and was right, but the BTB had no
    #: target (only counted when a BTB is modelled)
    misfetches: int = 0
    #: per-branch flags (only with ``SimOptions(record_flags=True)``)
    flags: Optional["BranchFlags"] = None
    #: misprediction attribution (only when :func:`simulate` was given a
    #: collector that aggregates, e.g. an ``AggregatingCollector``)
    attribution: Optional["AttributionAggregator"] = None  # noqa: F821

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.misprediction_rate

    @property
    def mpki(self) -> float:
        """Mispredictions per 1000 dynamic instructions."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def squash_coverage(self) -> float:
        return self.squashed / self.branches if self.branches else 0.0

    @property
    def misfetch_rate(self) -> float:
        return self.misfetches / self.branches if self.branches else 0.0

    def class_stats(self, branch_class: BranchClass) -> ClassStats:
        return self.per_class.get(branch_class, ClassStats())

    def headline_metrics(self) -> dict:
        """Flat ``name -> number`` summary for the run-history store.

        Deterministic given (trace, predictor, options) — everything
        here derives from the integer outcome counters, so recorded
        payloads are byte-identical across serial and parallel sweeps.
        Keys are stable API: ``repro history diff`` matches on them.
        """
        metrics = {
            "branches": float(self.branches),
            "mispredictions": float(self.mispredictions),
            "misprediction_rate": self.misprediction_rate,
            "mpki": self.mpki,
            "squashed": float(self.squashed),
            "squash_coverage": self.squash_coverage,
            "misfetches": float(self.misfetches),
        }
        for branch_class, stats in sorted(
            self.per_class.items(), key=lambda item: int(item[0])
        ):
            name = branch_class.name.lower()
            metrics[f"class.{name}.branches"] = float(stats.branches)
            metrics[f"class.{name}.misprediction_rate"] = (
                stats.misprediction_rate
            )
            metrics[f"class.{name}.squash_coverage"] = (
                stats.squash_coverage
            )
        return metrics


def simulate(
    trace: Trace,
    predictor: BranchPredictor,
    options: SimOptions = SimOptions(),
    collector=None,
    core: Optional[str] = None,
) -> SimResult:
    """Run ``trace`` through ``predictor`` under ``options``.

    ``collector`` (an :class:`repro.profiler.EventCollector`) receives a
    :class:`~repro.profiler.events.PredictionEvent` for every sampled
    dynamic branch — sampling is the collector's deterministic
    1-in-``rate`` decision keyed on the branch's stream index, so the
    event stream is identical run to run.  With no collector the event
    path reduces to one sentinel comparison per branch.

    ``core`` selects the execution engine: ``"object"`` (this loop, the
    reference), ``"fast"`` (flat kernels over a pre-decoded stream) or
    ``"numpy"`` (batched table replay); ``None`` resolves through
    :func:`repro.sim.core.resolve_core` (context, then
    ``$REPRO_SIM_CORE``, then ``"object"``).  Results are bit-identical
    across cores; points the fast cores cannot model exactly —
    unkernelized predictors, BTB modelling, profiler collectors — run
    here regardless of the knob.

    With tracing on (:mod:`repro.telemetry.tracing`) the run is wrapped
    in a ``sim.driver`` trace span; this is trace-only — the ``sim.*``
    counter set recorded into the metrics registry never changes.
    """
    from repro.sim.core import resolve_core

    core = resolve_core(core)
    if not telemetry.tracing_enabled():
        return _simulate(trace, predictor, options, collector, core)
    with telemetry.trace_span(
        "sim.driver",
        workload=trace.meta.workload or "<trace>",
        predictor=predictor.name,
        core=core,
    ):
        return _simulate(trace, predictor, options, collector, core)


def _simulate(
    trace: Trace,
    predictor: BranchPredictor,
    options: SimOptions,
    collector,
    core: str,
) -> SimResult:
    """The driver body; ``core`` arrives resolved (see :func:`simulate`)."""
    if core != "object":
        from repro.sim import fastcore

        if fastcore.supported(predictor, options, collector):
            return fastcore.run_fast(
                trace, predictor, options, core=core
            )
    availability = AvailabilityModel(options.distance)
    history = GlobalHistory(options.history_bits)
    sfp = options.sfp
    pgu = options.pgu

    if sfp is None:
        squashable = None
    elif sfp.squash_known_true:
        # Extension: any resolved guard determines the direction exactly
        # (false -> not taken, true -> taken).
        squashable = availability.guard_known_mask(trace) & (
            trace.b_guard != 0
        )
    else:
        squashable = availability.squashable_mask(trace)

    # Predicate-define stream for PGU, filtered and with its delay fixed.
    if pgu is not None:
        delay = options.distance if pgu.delay is None else pgu.delay
        d_idx = trace.d_idx
        d_value = trace.d_value
        if pgu.which == "guards_only":
            guard_preds = set(int(g) for g in trace.b_guard if g > 0)
            keep = [
                k
                for k in range(trace.num_pdefs)
                if int(trace.d_pred[k]) in guard_preds
            ]
            d_idx = d_idx[keep]
            d_value = d_value[keep]
        d_idx = d_idx.tolist()
        d_value = d_value.tolist()
        num_defs = len(d_idx)
    else:
        delay = 0
        d_idx = d_value = []
        num_defs = 0

    b_pc = trace.b_pc.tolist()
    b_idx = trace.b_idx.tolist()
    b_taken = trace.b_taken.tolist()
    b_target = trace.b_target.tolist()
    classes = trace.branch_classes().tolist()
    squash_list = squashable.tolist() if squashable is not None else None

    is_static = isinstance(predictor, StaticPredictor)
    is_perfect = isinstance(predictor, PerfectPredictor)
    predict = predictor.predict
    update = predictor.update
    shift = history.shift

    mispredictions = 0
    squashed = 0
    per_class = {
        BranchClass.NORMAL: ClassStats(),
        BranchClass.REGION: ClassStats(),
        BranchClass.LOOP: ClassStats(),
    }
    dptr = 0
    delayed = options.delayed_update
    resolve_after = options.distance
    pending = []  # (apply_at, pc, ghr, taken) when delayed_update
    pptr = 0
    btb = (
        BranchTargetBuffer(options.btb) if options.btb is not None else None
    )
    misfetches = 0
    record = options.record_flags
    f_correct = [] if record else None
    f_squashed = [] if record else None
    f_misfetch = [] if record else None

    # Profiling: `next_sample` is the only per-branch cost when no
    # collector is installed (it stays -1, which no index reaches).
    # A first sample past the last branch can never fire (sample
    # indices only grow), so skip the event plumbing entirely: a
    # disarmed contract checker or a past-the-end phase costs nothing.
    emitting = (
        collector is not None
        and (-collector.seed) % collector.rate < len(b_pc)
    )
    if emitting:
        p_rate = collector.rate
        next_sample = (-collector.seed) % p_rate
        collect = collector.collect
        pb_guard = trace.b_guard.tolist()
        pb_guard_def = trace.b_guard_def.tolist()
        pb_region = trace.b_region.tolist()
        pgu_on = pgu is not None

        def emit_event(i, j, predicted, taken, sfp_code, conf):
            # Predicate bits inserted since the previous branch: the
            # defines whose visibility index lands in (j_prev, j].
            if pgu_on:
                prev_j = b_idx[i - 1] if i else -1
                k = dptr
                while k and d_idx[k - 1] + delay > prev_j:
                    k -= 1
                bits = dptr - k
                pgu_code = _PGU_INSERT if bits else _PGU_UPDATE
            else:
                bits = 0
                pgu_code = _PGU_OFF
            guard_def = pb_guard_def[i]
            collect(PredictionEvent(
                seq=i,
                pc=b_pc[i],
                branch_class=classes[i],
                region_based=pb_region[i],
                guard=pb_guard[i],
                avail=(j - guard_def) if guard_def >= 0 else AVAIL_NEVER,
                sfp=sfp_code,
                pgu=pgu_code,
                pgu_bits=bits,
                predicted=predicted,
                taken=taken,
                conf=conf,
            ))
    else:
        p_rate = 0
        next_sample = -1
        emit_event = None

    for i in range(len(b_pc)):
        j = b_idx[i]
        while dptr < num_defs and d_idx[dptr] + delay <= j:
            shift(d_value[dptr])
            dptr += 1
        if delayed:
            while pptr < len(pending) and pending[pptr][0] <= j:
                __, pc_, ghr_, taken_ = pending[pptr]
                update(pc_, ghr_, taken_)
                pptr += 1

        stats = per_class[classes[i]]
        stats.branches += 1
        taken = b_taken[i]

        if squash_list is not None and squash_list[i]:
            # Guard resolved by fetch: the direction is certain (a guard
            # known false cannot be taken; with squash_known_true, a
            # guard known true must be).
            squashed += 1
            stats.squashed += 1
            if sfp.update_pht:
                update(b_pc[i], history.bits, taken)
            if sfp.update_history:
                shift(taken)
            missed_target = False
            if btb is not None and taken:
                # A known-true squash still needs the target.
                if btb.lookup(b_pc[i]) is None:
                    misfetches += 1
                    missed_target = True
                if b_target[i] >= 0:
                    btb.insert(b_pc[i], b_target[i])
            if record:
                f_correct.append(True)
                f_squashed.append(True)
                f_misfetch.append(missed_target)
            if i == next_sample:
                next_sample += p_rate
                asserted = taken if sfp.squash_known_true else False
                emit_event(
                    i, j, asserted, taken,
                    _SFP_FILTERED_CORRECT if asserted == taken
                    else _SFP_FILTERED_WRONG,
                    CONF_PERFECT,
                )
            continue

        if is_static:
            predictor.set_target(b_target[i])
        elif is_perfect:
            predictor.set_outcome(taken)
        ghr = history.bits
        predicted = predict(b_pc[i], ghr)
        if delayed:
            pending.append((j + resolve_after, b_pc[i], ghr, taken))
        else:
            update(b_pc[i], ghr, taken)
        shift(taken)
        if predicted != taken:
            mispredictions += 1
            stats.mispredictions += 1
        missed_target = False
        if btb is not None:
            if predicted and taken and btb.lookup(b_pc[i]) is None:
                # Right direction, no target by fetch: a misfetch.
                misfetches += 1
                missed_target = True
            if taken and b_target[i] >= 0:
                btb.insert(b_pc[i], b_target[i])
        if record:
            f_correct.append(predicted == taken)
            f_squashed.append(False)
            f_misfetch.append(missed_target)
        if i == next_sample:
            next_sample += p_rate
            emit_event(
                i, j, predicted, taken, _SFP_NOT_FILTERED, CONF_UNKNOWN
            )

    branches = len(b_pc)
    if telemetry.enabled():
        # Coarse end-of-run counters only: the per-branch loop above is
        # the hot path and stays uninstrumented.
        registry = telemetry.get_registry()
        registry.counter("sim.runs").inc()
        registry.counter("sim.instructions").inc(trace.meta.instructions)
        registry.counter("sim.branches").inc(branches)
        registry.counter("sim.predicts").inc(branches - squashed)
        updates = pptr if delayed else branches - squashed
        if sfp is not None and sfp.update_pht:
            updates += squashed
        registry.counter("sim.updates").inc(updates)
        registry.counter("sim.mispredictions").inc(mispredictions)
        registry.counter("sim.squashed").inc(squashed)
        registry.counter("sim.misfetches").inc(misfetches)
        for branch_class, stats in per_class.items():
            prefix = f"sim.class.{branch_class.name.lower()}"
            registry.counter(f"{prefix}.branches").inc(stats.branches)
            registry.counter(f"{prefix}.mispredictions").inc(
                stats.mispredictions
            )
            registry.counter(f"{prefix}.squashed").inc(stats.squashed)

    # Duck-typed: any collector that exposes an `aggregator` (e.g.
    # AggregatingCollector, or a Tee wrapping one) rides back on the
    # result, which is how sweep workers ship attribution to the parent.
    attribution = (
        getattr(collector, "aggregator", None)
        if collector is not None
        else None
    )
    return SimResult(
        predictor=predictor.name,
        options=options,
        workload=trace.meta.workload or "<trace>",
        instructions=trace.meta.instructions,
        branches=trace.num_branches,
        mispredictions=mispredictions,
        squashed=squashed,
        per_class=per_class,
        misfetches=misfetches,
        flags=(
            BranchFlags(
                correct=np.asarray(f_correct, dtype=bool),
                squashed=np.asarray(f_squashed, dtype=bool),
                misfetch=np.asarray(f_misfetch, dtype=bool),
            )
            if record
            else None
        ),
        attribution=attribution,
    )
