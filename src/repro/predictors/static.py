"""Static (history-free) predictors."""

from repro.predictors.base import BranchPredictor


class StaticPredictor(BranchPredictor):
    """Always-taken, always-not-taken, or BTFN.

    BTFN (backward taken, forward not-taken) needs branch targets; the
    simulation driver calls :meth:`set_target` before each prediction.
    """

    POLICIES = ("taken", "not_taken", "btfn")

    def __init__(self, policy: str = "not_taken"):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown static policy {policy!r}")
        self.policy = policy
        self.name = f"static-{policy}"
        self._target = -1

    def set_target(self, target: int) -> None:
        self._target = target

    def predict(self, pc: int, history: int) -> bool:
        if self.policy == "taken":
            return True
        if self.policy == "not_taken":
            return False
        return self._target >= 0 and self._target <= pc

    def update(self, pc: int, history: int, taken: bool) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0
