"""Predictor interface and the saturating-counter table primitive."""

from abc import ABC, abstractmethod


class SaturatingCounters:
    """A table of 2-bit saturating counters.

    Counter values 0..3; 2 and 3 predict taken.  Backed by a plain Python
    list — in a scalar simulation loop, list indexing beats numpy scalar
    access by a wide margin.
    """

    __slots__ = ("table", "mask")

    def __init__(self, entries: int, init: int = 1):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 <= init <= 3:
            raise ValueError("init must be 0..3")
        self.table = [init] * entries
        self.mask = entries - 1

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        value = self.table[index]
        if taken:
            if value < 3:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1

    def __len__(self) -> int:
        return self.mask + 1

    @property
    def storage_bits(self) -> int:
        return 2 * (self.mask + 1)


class BranchPredictor(ABC):
    """Interface every predictor implements.

    ``history`` is the front end's global history register (an int whose
    least-significant bit is the most recent outcome/predicate bit).  The
    simulation driver owns and updates it; predictors that keep private
    state (local history, perceptron weights) simply ignore it.
    """

    #: set by subclasses; used in reports
    name: str = "predictor"

    @abstractmethod
    def predict(self, pc: int, history: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, history: int, taken: bool) -> None:
        """Train on the resolved outcome.  ``history`` is the value the
        front end used at predict time for this branch."""

    @property
    def storage_bits(self) -> int:
        """Approximate hardware budget, in bits."""
        return 0

    def reset(self) -> None:
        """Forget all state (fresh tables).  Subclasses override."""

    def describe(self) -> str:
        return f"{self.name} ({self.storage_bits} bits)"
