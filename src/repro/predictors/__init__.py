"""Branch predictors and the paper's two predicate mechanisms.

Conventional predictors (:mod:`repro.predictors`):

* ``static`` — always-taken / always-not-taken / backward-taken
  forward-not-taken;
* ``bimodal`` — per-PC 2-bit counters;
* ``gshare`` / ``gselect`` / ``gag`` — global-history two-level tables;
* ``local`` — per-branch history, PAg style;
* ``tournament`` — Alpha-21264-style chooser over local + gshare;
* ``perceptron`` — global-history perceptron (a post-paper extension for
  context);
* ``perfect`` — oracle lower bound.

All predictors expose ``predict(pc, history)`` / ``update(pc, history,
taken)`` where ``history`` is the *front end's* global history register —
owned by the simulation driver, because the paper's predicate
global-update mechanism changes what goes into it
(:class:`repro.predictors.pgu.PGUConfig`), and the squash false-path
filter can bypass the predictor entirely
(:class:`repro.predictors.sfp.SFPConfig`).
"""

from repro.predictors.base import BranchPredictor, SaturatingCounters
from repro.predictors.static import StaticPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gselect import GSelectPredictor
from repro.predictors.twolevel import GAgPredictor, LocalPredictor
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.tage import TagePredictor
from repro.predictors.confidence import ConfidenceEstimator, ConfidenceResult
from repro.predictors.sfp import SFPConfig
from repro.predictors.pgu import PGUConfig
from repro.predictors.registry import available_predictors, make_predictor

__all__ = [
    "BimodalPredictor",
    "ConfidenceEstimator",
    "ConfidenceResult",
    "BranchPredictor",
    "GAgPredictor",
    "GSelectPredictor",
    "GSharePredictor",
    "LocalPredictor",
    "PGUConfig",
    "PerceptronPredictor",
    "PerfectPredictor",
    "SFPConfig",
    "SaturatingCounters",
    "StaticPredictor",
    "TagePredictor",
    "TournamentPredictor",
    "available_predictors",
    "make_predictor",
]
