"""The predicate global-update mechanism (the paper's second mechanism).

Predicate *defines* — compare instructions writing predicate registers —
are shifted into the global history register alongside branch outcomes.
A region-based branch correlates with the predicate definitions in its
region (including, but not limited to, the define of its own guard), so
the augmented history gives any global-history predictor a sharper
second-level context.

Timing: a predicate value computed at dynamic index ``i`` can reach the
front end's history register once it has actually been computed, i.e.
``delay`` instructions later (normally the same front-end distance ``D``
used by the squash filter).  Branch outcomes, by contrast, enter history
speculatively at predict time, as real front ends do.

Design space (E10 ablations):

* ``delay`` — 0 models an idealized machine where defines are visible
  immediately; ``None`` means "use the front end's D".
* ``which`` — insert *all* predicate defines (hardware cannot know which
  predicates will guard a branch; default) or only defines of predicates
  that ever guard one (an oracle filter showing how much of the history
  is diluted by non-guard predicates).
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PGUConfig:
    """Configuration of predicate global update."""

    delay: Optional[int] = None  #: None -> use the front end's distance D
    which: str = "all"  #: "all" or "guards_only"

    def __post_init__(self):
        if self.which not in ("all", "guards_only"):
            raise ValueError(f"unknown PGU filter {self.which!r}")

    def describe(self) -> str:
        delay = "D" if self.delay is None else str(self.delay)
        return f"pgu(delay={delay},{self.which})"


#: The paper's default behaviour.
DEFAULT = PGUConfig()
