"""The squash false-path filter (the paper's first mechanism).

A branch guarded by a qualifying predicate *cannot* be taken if that
predicate is false.  When the predicate's defining compare resolved at
least ``D`` dynamic instructions before the branch is fetched (``D`` =
front-end depth, :class:`repro.pipeline.availability.AvailabilityModel`),
the front end *knows* the guard is false at fetch and can assert
not-taken with 100% accuracy — no table lookup, no possibility of a
misprediction.

The filter also controls what the squashed branch does to predictor
state; both questions are the paper's (and our E10 ablation's) design
space:

* ``update_pht`` — train the pattern table with the (certain) not-taken
  outcome anyway, or keep it out of the tables (filtering avoids
  aliasing/pollution; default).
* ``update_history`` — shift the not-taken outcome into the global
  history register so history stays aligned with the fetch stream
  (default), or skip the shift to keep history dense in "real" outcomes.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SFPConfig:
    """Configuration of the squash false-path filter.

    ``squash_known_true`` is an *extension* beyond the paper: a branch is
    taken iff its qualifying predicate holds, so a guard resolved *true*
    by fetch time determines the direction just as certainly as a false
    one (the target still needs a BTB, but the direction is exact).  The
    paper's filter handles only the false case; E10 ablates the
    difference.
    """

    update_pht: bool = False
    update_history: bool = True
    squash_known_true: bool = False

    def describe(self) -> str:
        pht = "train-pht" if self.update_pht else "filter-pht"
        hist = "shift-history" if self.update_history else "skip-history"
        both = ",both-dirs" if self.squash_known_true else ""
        return f"sfp({pht},{hist}{both})"


#: The paper's default behaviour.
DEFAULT = SFPConfig()
