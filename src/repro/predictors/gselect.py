"""gselect: concatenated PC and history bits index the counter table."""

from repro.predictors.base import BranchPredictor, SaturatingCounters


class GSelectPredictor(BranchPredictor):
    """``table[pc_bits .. history_bits]`` of 2-bit counters.

    With ``entries = 2**n`` and ``history_bits = h``, the low ``n - h``
    PC bits are concatenated with the low ``h`` history bits.
    """

    def __init__(self, entries: int = 4096, history_bits: int = -1):
        self.entries = entries
        self.counters = SaturatingCounters(entries)
        index_bits = entries.bit_length() - 1
        if history_bits < 0:
            history_bits = index_bits // 2
        if history_bits > index_bits:
            raise ValueError("history_bits exceeds index width")
        self.history_bits = history_bits
        self.pc_bits = index_bits - history_bits
        self.history_mask = (1 << history_bits) - 1
        self.pc_mask = (1 << self.pc_bits) - 1
        self.name = f"gselect-{entries}/h{history_bits}"

    def _index(self, pc: int, history: int) -> int:
        return ((pc & self.pc_mask) << self.history_bits) | (
            history & self.history_mask
        )

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(self._index(pc, history))

    def update(self, pc: int, history: int, taken: bool) -> None:
        self.counters.update(self._index(pc, history), taken)

    @property
    def storage_bits(self) -> int:
        return self.counters.storage_bits

    def reset(self) -> None:
        self.counters = SaturatingCounters(self.entries)
