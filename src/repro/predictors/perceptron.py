"""Perceptron predictor (Jimenez & Lin, HPCA 2001).

Included as a post-paper extension: it consumes the same global history
the predicate global-update mechanism augments, so it shows whether the
predicate bits help a fundamentally different history consumer too.
"""

from repro.predictors.base import BranchPredictor


class PerceptronPredictor(BranchPredictor):
    """Table of perceptrons over the last ``history_bits`` history bits.

    Weights are small saturating integers; the threshold follows the
    published ``1.93 * h + 14`` rule.
    """

    def __init__(self, entries: int = 256, history_bits: int = 16,
                 weight_bits: int = 8):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.mask = entries - 1
        self.weight_limit = (1 << (weight_bits - 1)) - 1
        self.threshold = int(1.93 * history_bits + 14)
        # weights[i] = [bias, w_1 .. w_h]
        self.weights = [[0] * (history_bits + 1) for _ in range(entries)]
        self.name = f"perceptron-{entries}x{history_bits}"

    def _output(self, pc: int, history: int) -> int:
        w = self.weights[pc & self.mask]
        total = w[0]
        for bit in range(self.history_bits):
            if (history >> bit) & 1:
                total += w[bit + 1]
            else:
                total -= w[bit + 1]
        return total

    def predict(self, pc: int, history: int) -> bool:
        return self._output(pc, history) >= 0

    def update(self, pc: int, history: int, taken: bool) -> None:
        output = self._output(pc, history)
        predicted = output >= 0
        if predicted == taken and abs(output) > self.threshold:
            return
        w = self.weights[pc & self.mask]
        direction = 1 if taken else -1
        limit = self.weight_limit
        w[0] = max(-limit, min(limit, w[0] + direction))
        for bit in range(self.history_bits):
            agree = ((history >> bit) & 1) == int(taken)
            delta = 1 if agree else -1
            w[bit + 1] = max(-limit, min(limit, w[bit + 1] + delta))

    @property
    def storage_bits(self) -> int:
        return self.entries * (self.history_bits + 1) * 8

    def reset(self) -> None:
        self.weights = [
            [0] * (self.history_bits + 1) for _ in range(self.entries)
        ]
