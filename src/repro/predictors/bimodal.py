"""Bimodal predictor: a per-PC table of 2-bit counters (Smith, 1981)."""

from repro.predictors.base import BranchPredictor, SaturatingCounters


class BimodalPredictor(BranchPredictor):
    """``table[pc mod entries]`` of 2-bit counters; ignores history."""

    def __init__(self, entries: int = 4096):
        self.entries = entries
        self.counters = SaturatingCounters(entries)
        self.name = f"bimodal-{entries}"

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(pc)

    def update(self, pc: int, history: int, taken: bool) -> None:
        self.counters.update(pc, taken)

    @property
    def storage_bits(self) -> int:
        return self.counters.storage_bits

    def reset(self) -> None:
        self.counters = SaturatingCounters(self.entries)
