"""Factory for predictors by name — the CLI and experiments use this."""

from typing import List

from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gselect import GSelectPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.static import StaticPredictor
from repro.predictors.tage import TagePredictor
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.twolevel import GAgPredictor, LocalPredictor

_FACTORIES = {
    "static": lambda **kw: StaticPredictor(**kw),
    "bimodal": lambda **kw: BimodalPredictor(**kw),
    "gshare": lambda **kw: GSharePredictor(**kw),
    "gselect": lambda **kw: GSelectPredictor(**kw),
    "gag": lambda **kw: GAgPredictor(**kw),
    "local": lambda **kw: LocalPredictor(**kw),
    "tournament": lambda **kw: TournamentPredictor(**kw),
    "perceptron": lambda **kw: PerceptronPredictor(**kw),
    "perfect": lambda **kw: PerfectPredictor(**kw),
    "tage": lambda **kw: TagePredictor(**kw),
}


def available_predictors() -> List[str]:
    """Names accepted by :func:`make_predictor`."""
    return sorted(_FACTORIES)


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Build a predictor by name, e.g. ``make_predictor("gshare",
    entries=4096)``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; available: "
            f"{', '.join(available_predictors())}"
        ) from None
    return factory(**kwargs)
