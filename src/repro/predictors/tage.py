"""TAGE-lite: a tagged geometric-history-length predictor.

A post-paper extension (Seznec & Michaud, 2006) included to ask whether
predicate global update still adds information once the predictor itself
exploits very long histories: TAGE's tagged components consume the same
front-end history register PGU augments, so predicate bits flow into
every geometric history length at once.

This is a faithful small TAGE: a bimodal base predictor plus ``N``
tagged tables indexed by hashes of geometrically increasing history
prefixes, provider/altpred selection, useful counters with periodic
aging, and allocation on mispredictions.  (No loop predictor or
statistical corrector — hence "lite".)
"""

from typing import List

from repro.predictors.base import BranchPredictor, SaturatingCounters


class _TaggedTable:
    __slots__ = ("mask", "tags", "counters", "useful", "history_bits",
                 "tag_bits")

    def __init__(self, entries: int, history_bits: int, tag_bits: int):
        self.mask = entries - 1
        self.tags = [0] * entries
        self.counters = [3] * entries  # 3-bit counter, 0..7, >=4 taken
        self.useful = [0] * entries
        self.history_bits = history_bits
        self.tag_bits = tag_bits

    def index(self, pc: int, history: int) -> int:
        folded = _fold(history & ((1 << self.history_bits) - 1),
                       self.mask.bit_length())
        return (pc ^ folded ^ (pc >> 3)) & self.mask

    def tag(self, pc: int, history: int) -> int:
        folded = _fold(history & ((1 << self.history_bits) - 1),
                       self.tag_bits)
        return (pc ^ (folded << 1) ^ (pc >> 5)) & ((1 << self.tag_bits) - 1)


def _fold(value: int, bits: int) -> int:
    """XOR-fold an arbitrary-width integer down to ``bits`` bits."""
    if bits <= 0:
        return 0
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class TagePredictor(BranchPredictor):
    """TAGE with a bimodal base and geometric tagged components.

    Args:
        base_entries: bimodal base table size.
        table_entries: size of each tagged table.
        num_tables: tagged components.
        min_history / max_history: geometric history-length schedule.
        tag_bits: tag width.
    """

    def __init__(
        self,
        base_entries: int = 4096,
        table_entries: int = 1024,
        num_tables: int = 4,
        min_history: int = 4,
        max_history: int = 64,
        tag_bits: int = 9,
    ):
        self.base = SaturatingCounters(base_entries)
        self.base_entries = base_entries
        lengths = []
        for k in range(num_tables):
            ratio = (max_history / min_history) ** (
                k / max(num_tables - 1, 1)
            )
            lengths.append(max(1, int(round(min_history * ratio))))
        self.history_lengths = lengths
        self.tables: List[_TaggedTable] = [
            _TaggedTable(table_entries, length, tag_bits)
            for length in lengths
        ]
        self.table_entries = table_entries
        self.tag_bits = tag_bits
        self._ticks = 0
        self.name = (
            f"tage-{num_tables}x{table_entries}"
            f"(h{lengths[0]}..{lengths[-1]})"
        )

    # -- prediction -----------------------------------------------------------

    def _find(self, pc: int, history: int):
        """(provider_index, alt_index): longest and next-longest hits."""
        provider = alt = -1
        for index in range(len(self.tables) - 1, -1, -1):
            table = self.tables[index]
            slot = table.index(pc, history)
            if table.tags[slot] == table.tag(pc, history):
                if provider < 0:
                    provider = index
                elif alt < 0:
                    alt = index
                    break
        return provider, alt

    def _component_prediction(self, index: int, pc: int,
                              history: int) -> bool:
        table = self.tables[index]
        return table.counters[table.index(pc, history)] >= 4

    def predict(self, pc: int, history: int) -> bool:
        provider, _ = self._find(pc, history)
        if provider >= 0:
            return self._component_prediction(provider, pc, history)
        return self.base.predict(pc)

    # -- training ---------------------------------------------------------------

    def update(self, pc: int, history: int, taken: bool) -> None:
        provider, alt = self._find(pc, history)
        if provider >= 0:
            table = self.tables[provider]
            slot = table.index(pc, history)
            prediction = table.counters[slot] >= 4
            alt_prediction = (
                self._component_prediction(alt, pc, history)
                if alt >= 0
                else self.base.predict(pc)
            )
            # Useful counter: provider right where altpred was wrong.
            if prediction != alt_prediction:
                if prediction == taken:
                    if table.useful[slot] < 3:
                        table.useful[slot] += 1
                elif table.useful[slot] > 0:
                    table.useful[slot] -= 1
            # Train the provider counter.
            value = table.counters[slot]
            if taken and value < 7:
                table.counters[slot] = value + 1
            elif not taken and value > 0:
                table.counters[slot] = value - 1
        else:
            prediction = self.base.predict(pc)
            self.base.update(pc, taken)
        if prediction == taken:
            return
        # Allocate a longer-history entry on a misprediction.
        start = provider + 1
        for index in range(start, len(self.tables)):
            table = self.tables[index]
            slot = table.index(pc, history)
            if table.useful[slot] == 0:
                table.tags[slot] = table.tag(pc, history)
                table.counters[slot] = 4 if taken else 3
                break
        else:
            # Nothing free: age the candidates.
            for index in range(start, len(self.tables)):
                table = self.tables[index]
                slot = table.index(pc, history)
                if table.useful[slot] > 0:
                    table.useful[slot] -= 1
        # Periodic global aging keeps entries reclaimable.
        self._ticks += 1
        if self._ticks >= 256_000:
            self._ticks = 0
            for table in self.tables:
                for slot in range(len(table.useful)):
                    if table.useful[slot] > 0:
                        table.useful[slot] -= 1

    @property
    def storage_bits(self) -> int:
        tagged = sum(
            (3 + 2 + table.tag_bits) * (table.mask + 1)
            for table in self.tables
        )
        return self.base.storage_bits + tagged

    def reset(self) -> None:
        self.__init__(
            base_entries=self.base_entries,
            table_entries=self.table_entries,
            num_tables=len(self.tables),
            min_history=self.history_lengths[0],
            max_history=self.history_lengths[-1],
            tag_bits=self.tag_bits,
        )
