"""Branch-confidence estimation (JRS-style), predicate-aware.

Jacobsen/Rotenberg/Smith (MICRO 1996) attach a *confidence* to every
branch prediction: a table of resetting counters indexed like gshare —
incremented when the branch predicts correctly, cleared on a
misprediction; a prediction is high-confidence when its counter is
saturated-enough.  Consumers include pipeline gating, SMT fetch
steering, and selective recovery.

The predicate connection (our extension, E14): a branch squashed by the
false-path filter is *perfectly* confident — the guard value proves the
direction.  A predicate-aware estimator therefore reports three classes:
``perfect`` (squashed), ``high`` (counter above threshold) and ``low``;
SFP converts part of the hard-to-trust population into free perfect
confidence, which gating-style consumers can exploit directly.
"""

from dataclasses import dataclass


class ConfidenceEstimator:
    """A table of resetting counters (miss-distance counters).

    Args:
        entries: table size (power of two).
        threshold: counter value at/above which a prediction is
            high-confidence.
        ceiling: saturation value of the counters.
    """

    def __init__(self, entries: int = 1024, threshold: int = 8,
                 ceiling: int = 15):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 < threshold <= ceiling:
            raise ValueError("need 0 < threshold <= ceiling")
        self.mask = entries - 1
        self.threshold = threshold
        self.ceiling = ceiling
        self.table = [0] * entries

    def _index(self, pc: int, history: int) -> int:
        return (pc ^ history) & self.mask

    def is_confident(self, pc: int, history: int) -> bool:
        """High confidence for the upcoming prediction at ``pc``?"""
        return self.table[self._index(pc, history)] >= self.threshold

    def update(self, pc: int, history: int, correct: bool) -> None:
        """Train on the resolved prediction outcome."""
        index = self._index(pc, history)
        if correct:
            if self.table[index] < self.ceiling:
                self.table[index] += 1
        else:
            self.table[index] = 0

    @property
    def storage_bits(self) -> int:
        return (self.mask + 1) * self.ceiling.bit_length()


@dataclass
class ConfidenceResult:
    """Outcome of a confidence-instrumented simulation."""

    branches: int
    perfect: int  #: squashed: direction proven by the guard
    high: int  #: estimator said confident (excluding perfect)
    high_correct: int
    low: int
    low_correct: int

    @property
    def perfect_coverage(self) -> float:
        return self.perfect / self.branches if self.branches else 0.0

    @property
    def high_coverage(self) -> float:
        return self.high / self.branches if self.branches else 0.0

    @property
    def high_accuracy(self) -> float:
        return self.high_correct / self.high if self.high else 1.0

    @property
    def low_accuracy(self) -> float:
        return self.low_correct / self.low if self.low else 1.0

    @property
    def trusted_coverage(self) -> float:
        """Fraction a gating consumer may trust: perfect + high."""
        if not self.branches:
            return 0.0
        return (self.perfect + self.high) / self.branches

    @property
    def trusted_accuracy(self) -> float:
        trusted = self.perfect + self.high
        if not trusted:
            return 1.0
        return (self.perfect + self.high_correct) / trusted
