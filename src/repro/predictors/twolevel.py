"""Two-level predictors: GAg (pure global) and PAg-style local."""

from repro.predictors.base import BranchPredictor, SaturatingCounters


class GAgPredictor(BranchPredictor):
    """Pure global two-level: history alone indexes the pattern table."""

    def __init__(self, entries: int = 4096):
        self.entries = entries
        self.counters = SaturatingCounters(entries)
        self.history_bits = entries.bit_length() - 1
        self.name = f"gag-{entries}"

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(history)

    def update(self, pc: int, history: int, taken: bool) -> None:
        self.counters.update(history, taken)

    @property
    def storage_bits(self) -> int:
        return self.counters.storage_bits

    def reset(self) -> None:
        self.counters = SaturatingCounters(self.entries)


class LocalPredictor(BranchPredictor):
    """PAg-style local predictor.

    A per-PC history table feeds a shared pattern table of 2-bit
    counters.  The front end's global history is ignored — local history
    is private predictor state, updated at ``update`` time (trace-driven
    simulation resolves branches in order, so speculative-history
    subtleties do not arise for the local table).
    """

    def __init__(self, entries: int = 4096, local_entries: int = 1024,
                 history_bits: int = 10):
        self.entries = entries
        self.local_entries = local_entries
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.local_mask = local_entries - 1
        if local_entries & self.local_mask:
            raise ValueError("local_entries must be a power of two")
        self.histories = [0] * local_entries
        self.counters = SaturatingCounters(entries)
        self.name = f"local-{entries}/l{local_entries}x{history_bits}"

    def _index(self, pc: int) -> int:
        return self.histories[pc & self.local_mask] & self.history_mask

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(self._index(pc))

    def update(self, pc: int, history: int, taken: bool) -> None:
        slot = pc & self.local_mask
        local = self.histories[slot] & self.history_mask
        self.counters.update(local, taken)
        self.histories[slot] = ((local << 1) | int(taken))

    @property
    def storage_bits(self) -> int:
        return (
            self.counters.storage_bits
            + self.local_entries * self.history_bits
        )

    def reset(self) -> None:
        self.histories = [0] * self.local_entries
        self.counters = SaturatingCounters(self.entries)
