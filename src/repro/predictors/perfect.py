"""Oracle predictor: a lower bound for misprediction studies."""

from repro.predictors.base import BranchPredictor


class PerfectPredictor(BranchPredictor):
    """Always right.  The simulation driver feeds it the actual outcome
    through :meth:`set_outcome` just before asking for a prediction."""

    name = "perfect"

    def __init__(self):
        self._outcome = False

    def set_outcome(self, taken: bool) -> None:
        self._outcome = taken

    def predict(self, pc: int, history: int) -> bool:
        return self._outcome

    def update(self, pc: int, history: int, taken: bool) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0
