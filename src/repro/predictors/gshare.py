"""gshare: global history XOR-folded with the PC (McFarling, 1993).

This is the paper's workhorse baseline: the predicate global-update
mechanism changes what enters the *history*, and gshare is the canonical
consumer of that history.
"""

from repro.predictors.base import BranchPredictor, SaturatingCounters


class GSharePredictor(BranchPredictor):
    """``table[(pc XOR history) mod entries]`` of 2-bit counters.

    Args:
        entries: pattern-history-table size (power of two).
        history_bits: how many history bits participate in the index;
            defaults to ``log2(entries)`` (the full-width classic).
    """

    def __init__(self, entries: int = 4096, history_bits: int = -1):
        self.entries = entries
        self.counters = SaturatingCounters(entries)
        index_bits = entries.bit_length() - 1
        self.history_bits = index_bits if history_bits < 0 else history_bits
        self.history_mask = (1 << self.history_bits) - 1
        self.name = f"gshare-{entries}/h{self.history_bits}"

    def _index(self, pc: int, history: int) -> int:
        return pc ^ (history & self.history_mask)

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(self._index(pc, history))

    def update(self, pc: int, history: int, taken: bool) -> None:
        self.counters.update(self._index(pc, history), taken)

    @property
    def storage_bits(self) -> int:
        return self.counters.storage_bits

    def reset(self) -> None:
        self.counters = SaturatingCounters(self.entries)
