"""Tournament predictor (Alpha-21264 style chooser)."""

from repro.predictors.base import BranchPredictor, SaturatingCounters
from repro.predictors.gshare import GSharePredictor
from repro.predictors.twolevel import LocalPredictor


class TournamentPredictor(BranchPredictor):
    """A chooser of 2-bit counters selects between two components.

    Defaults to local + gshare, the 21264 pairing.  The chooser is
    indexed by global history XOR PC and trains only when the components
    disagree, toward whichever was right.
    """

    def __init__(
        self,
        entries: int = 4096,
        component_a: BranchPredictor = None,
        component_b: BranchPredictor = None,
    ):
        self.entries = entries
        self.chooser = SaturatingCounters(entries)
        self.a = component_a or LocalPredictor(entries)
        self.b = component_b or GSharePredictor(entries)
        self.name = f"tournament-{entries}({self.a.name}|{self.b.name})"

    def _choose_b(self, pc: int, history: int) -> bool:
        return self.chooser.predict(pc ^ history)

    def predict(self, pc: int, history: int) -> bool:
        if self._choose_b(pc, history):
            return self.b.predict(pc, history)
        return self.a.predict(pc, history)

    def update(self, pc: int, history: int, taken: bool) -> None:
        pred_a = self.a.predict(pc, history)
        pred_b = self.b.predict(pc, history)
        if pred_a != pred_b:
            # Train the chooser toward the component that was right.
            self.chooser.update(pc ^ history, pred_b == taken)
        self.a.update(pc, history, taken)
        self.b.update(pc, history, taken)

    @property
    def storage_bits(self) -> int:
        return (
            self.chooser.storage_bits
            + self.a.storage_bits
            + self.b.storage_bits
        )

    def reset(self) -> None:
        self.chooser = SaturatingCounters(self.entries)
        self.a.reset()
        self.b.reset()
