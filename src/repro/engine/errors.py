"""Errors raised by the execution engine."""


class EngineError(Exception):
    """A runtime fault: bad memory access, division by zero, bad control."""

    def __init__(self, message: str, pc: int = -1):
        if pc >= 0:
            message = f"{message} (at instruction index {pc})"
        super().__init__(message)
        self.pc = pc


class EngineLimitError(EngineError):
    """The configured dynamic-instruction limit was exceeded.

    Usually means a workload loop bound is wrong — traces are meant to be
    finite and deterministic.
    """
