"""The instruction interpreter.

Performance notes: this loop runs millions of iterations per workload, so
the executable is first decoded into parallel Python lists (one flat list
per instruction field), all hot names are bound to locals, and dispatch is
an ``if/elif`` chain ordered roughly by dynamic frequency.  Recording
callbacks are only invoked for the events the study needs (branches and
predicate defines), which keeps tracing overhead proportional to the event
rate rather than the instruction rate.
"""

from dataclasses import dataclass

from repro.engine.errors import EngineError, EngineLimitError
from repro.isa.opcodes import Opcode
from repro.isa.program import Executable
from repro.isa.registers import ARG_BASE, NUM_GPR, NUM_PRED, R_SP

_MASK = (1 << 64) - 1
_SIGN = 1 << 63

#: Default safety net on dynamic instruction count.
DEFAULT_MAX_INSTRUCTIONS = 200_000_000


@dataclass
class ExecResult:
    """Outcome of a program run."""

    instructions: int  #: dynamic instructions executed
    return_value: int  #: value returned by ``main`` (0 for plain ``halt``)
    halted: bool  #: True if the program ended via HALT / main's return


class Interpreter:
    """Executes a linked :class:`~repro.isa.program.Executable`.

    Args:
        executable: the linked program.
        recorder: optional trace recorder receiving ``branch`` /
            ``predicate_define`` events
            (see :class:`repro.trace.recorder.TraceRecorder`).
        profile: optional profile collector receiving
            ``(src_id, taken)`` branch observations
            (see :class:`repro.compiler.profile.ProfileCollector`).
        max_instructions: dynamic-instruction safety limit.
    """

    def __init__(
        self,
        executable: Executable,
        recorder=None,
        profile=None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ):
        self.executable = executable
        self.recorder = recorder
        self.profile = profile
        self.max_instructions = max_instructions
        self.memory = [0] * executable.memory_words
        self._decode(executable)

    def _decode(self, executable: Executable) -> None:
        code = executable.code
        n = len(code)
        self._op = [int(i.op) for i in code]
        self._qp = [i.qp for i in code]
        self._rd = [i.rd for i in code]
        self._ra = [i.ra for i in code]
        self._rb = [i.rb for i in code]
        self._imm = [i.imm for i in code]
        self._pd1 = [i.pd1 for i in code]
        self._pd2 = [i.pd2 for i in code]
        self._crel = [int(i.crel) for i in code]
        self._ctype = [int(i.ctype) for i in code]
        self._target = [
            i.target if isinstance(i.target, int) else -1 for i in code
        ]
        self._kind = [int(i.kind) for i in code]
        self._nargs = [i.nargs for i in code]
        self._region_based = [i.region_based for i in code]
        self._is_event = [i.is_branch_event() for i in code]
        self._src_id = [i.src_id for i in code]
        if n and any(
            code[i].op in (Opcode.BR, Opcode.CALL) and self._target[i] < 0
            for i in range(n)
        ):
            raise EngineError("executable contains unresolved targets")

    def run(self) -> ExecResult:
        """Run from the entry point until HALT or main's return."""
        exe = self.executable
        op = self._op
        qp = self._qp
        rdl = self._rd
        ral = self._ra
        rbl = self._rb
        imml = self._imm
        pd1l = self._pd1
        pd2l = self._pd2
        crell = self._crel
        ctypel = self._ctype
        targetl = self._target
        kindl = self._kind
        nargsl = self._nargs
        regionl = self._region_based
        eventl = self._is_event
        srcl = self._src_id
        memory = self.memory
        memlen = len(memory)

        recorder = self.recorder
        rec_branch = recorder.record_branch if recorder else None
        rec_pdef = recorder.record_pdef if recorder else None
        profile = self.profile
        prof_branch = profile.record_branch if profile else None

        slots_at_entry = {
            exe.function_entries[name]: slots
            for name, slots in exe.function_frame_slots.items()
        }

        regs = [0] * NUM_GPR
        regs[R_SP] = exe.memory_words - exe.function_frame_slots.get(
            exe.entry_name(exe.entry), 0
        )
        preds = [False] * NUM_PRED
        preds[0] = True
        pdef_idx = [-1] * NUM_PRED
        call_stack = []

        pc = exe.entry
        steps = 0
        limit = self.max_instructions
        ncode = len(op)
        return_value = 0
        halted = False

        while True:
            if steps >= limit:
                raise EngineLimitError(
                    f"instruction limit {limit} exceeded", pc
                )
            if not 0 <= pc < ncode:
                raise EngineError("control fell off the program", pc)
            i = pc
            o = op[i]
            steps += 1
            pc += 1
            pval = preds[qp[i]]

            if 0 < o <= 11:  # ALU group
                if pval:
                    a = regs[ral[i]]
                    rb = rbl[i]
                    b = regs[rb] if rb >= 0 else imml[i]
                    if o == 1:
                        v = a + b
                    elif o == 2:
                        v = a - b
                    elif o == 3:
                        v = a * b
                    elif o == 6:
                        v = a & b
                    elif o == 7:
                        v = a | b
                    elif o == 8:
                        v = a ^ b
                    elif o == 9:
                        v = a << (b & 63)
                    elif o == 10:
                        v = (a & _MASK) >> (b & 63)
                    elif o == 11:
                        v = a >> (b & 63)
                    else:  # o == 4 or o == 5
                        # Division by zero yields 0: the language runs
                        # predicated code down both arms of a hammock, so a
                        # guarded divide must never fault (Itanium has no
                        # integer-divide instruction to fault at all).
                        if b == 0:
                            v = 0
                        else:
                            q = abs(a) // abs(b)
                            if (a < 0) != (b < 0):
                                q = -q
                            v = q if o == 4 else a - q * b
                    v &= _MASK
                    if v & _SIGN:
                        v -= 0x10000000000000000
                    rd = rdl[i]
                    if rd:
                        regs[rd] = v
                continue

            if o == 12:  # MOV
                if pval:
                    ra = ral[i]
                    rd = rdl[i]
                    if rd:
                        regs[rd] = regs[ra] if ra >= 0 else imml[i]
                continue

            if o == 15:  # CMP
                if pval or ctypel[i] == 1:
                    ra = ral[i]
                    rb = rbl[i]
                    a = regs[ra] if ra >= 0 else 0
                    b = regs[rb] if rb >= 0 else imml[i]
                    rel = crell[i]
                    if rel == 0:
                        r = a == b
                    elif rel == 1:
                        r = a != b
                    elif rel == 2:
                        r = a < b
                    elif rel == 3:
                        r = a <= b
                    elif rel == 4:
                        r = a > b
                    else:
                        r = a >= b
                    ct = ctypel[i]
                    p1 = pd1l[i]
                    p2 = pd2l[i]
                    wrote = False
                    value = False
                    if ct == 0:  # NORMAL
                        if pval:
                            if p1 > 0:
                                preds[p1] = r
                                pdef_idx[p1] = steps - 1
                            if p2 > 0:
                                preds[p2] = not r
                                pdef_idx[p2] = steps - 1
                            wrote = True
                            value = r
                    elif ct == 1:  # UNC
                        rr = r if pval else False
                        if p1 > 0:
                            preds[p1] = rr
                            pdef_idx[p1] = steps - 1
                        if p2 > 0:
                            preds[p2] = (not r) if pval else False
                            pdef_idx[p2] = steps - 1
                        wrote = True
                        value = rr
                    elif ct == 2:  # AND
                        if pval and not r:
                            if p1 > 0:
                                preds[p1] = False
                                pdef_idx[p1] = steps - 1
                            if p2 > 0:
                                preds[p2] = False
                                pdef_idx[p2] = steps - 1
                            wrote = True
                            value = False
                    else:  # OR
                        if pval and r:
                            if p1 > 0:
                                preds[p1] = True
                                pdef_idx[p1] = steps - 1
                            if p2 > 0:
                                preds[p2] = True
                                pdef_idx[p2] = steps - 1
                            wrote = True
                            value = True
                    if wrote and rec_pdef is not None:
                        rec_pdef(i, steps - 1, value, p1)
                continue

            if o == 16:  # BR
                q = qp[i]
                taken = preds[q]
                if eventl[i]:
                    if rec_branch is not None:
                        rec_branch(
                            i,
                            steps - 1,
                            taken,
                            q,
                            pdef_idx[q],
                            kindl[i],
                            regionl[i],
                            targetl[i],
                        )
                    if prof_branch is not None and srcl[i] >= 0:
                        prof_branch(srcl[i], taken)
                if taken:
                    pc = targetl[i]
                continue

            if o == 13:  # LOAD
                if pval:
                    ra = ral[i]
                    addr = (regs[ra] if ra >= 0 else 0) + imml[i]
                    rd = rdl[i]
                    if rd:
                        # Non-faulting (IA-64 ld.s) semantics: predicated
                        # code evaluates both arms eagerly, so a load down
                        # a false path may form a wild address; it yields
                        # 0 instead of faulting.
                        if 0 <= addr < memlen:
                            regs[rd] = memory[addr]
                        else:
                            regs[rd] = 0
                continue

            if o == 14:  # STORE
                if pval:
                    ra = ral[i]
                    addr = (regs[ra] if ra >= 0 else 0) + imml[i]
                    if not 0 <= addr < memlen:
                        raise EngineError(f"store to bad address {addr}", i)
                    memory[addr] = regs[rbl[i]]
                continue

            if o == 17:  # CALL
                q = qp[i]
                taken = preds[q]
                if eventl[i] and rec_branch is not None:
                    rec_branch(
                        i,
                        steps - 1,
                        taken,
                        q,
                        pdef_idx[q],
                        kindl[i],
                        regionl[i],
                        targetl[i],
                    )
                if taken:
                    if len(call_stack) >= 4096:
                        raise EngineError("call stack overflow", i)
                    new_regs = [0] * NUM_GPR
                    for k in range(nargsl[i]):
                        new_regs[ARG_BASE + k] = regs[ARG_BASE + k]
                    target = targetl[i]
                    new_regs[R_SP] = regs[R_SP] - slots_at_entry[target]
                    call_stack.append((regs, preds, pdef_idx, pc, rdl[i]))
                    regs = new_regs
                    preds = [False] * NUM_PRED
                    preds[0] = True
                    pdef_idx = [-1] * NUM_PRED
                    pc = target
                continue

            if o == 18:  # RET
                q = qp[i]
                taken = preds[q]
                if eventl[i] and rec_branch is not None:
                    rec_branch(
                        i,
                        steps - 1,
                        taken,
                        q,
                        pdef_idx[q],
                        kindl[i],
                        regionl[i],
                        -1,
                    )
                if taken:
                    ra = ral[i]
                    value = regs[ra] if ra >= 0 else imml[i]
                    if not call_stack:
                        return_value = value
                        halted = True
                        break
                    regs, preds, pdef_idx, pc, rd = call_stack.pop()
                    if rd > 0:
                        regs[rd] = value
                continue

            if o == 19:  # HALT
                halted = True
                break

            # NOP (o == 0) or an always-false predicated oddity: fall through.

        return ExecResult(
            instructions=steps, return_value=return_value, halted=halted
        )


def run(
    executable: Executable,
    recorder=None,
    profile=None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> ExecResult:
    """Convenience wrapper: build an :class:`Interpreter` and run it."""
    return Interpreter(
        executable,
        recorder=recorder,
        profile=profile,
        max_instructions=max_instructions,
    ).run()
