"""Direct interpreter for linked predicated-ISA executables.

The interpreter executes an :class:`repro.isa.Executable`, maintaining
per-activation register frames (an IA-64-style register stack), flat word
memory, and — when given a recorder — emitting the dynamic branch and
predicate-define events that drive the trace-based predictor simulation.
"""

from repro.engine.errors import EngineError, EngineLimitError
from repro.engine.interpreter import ExecResult, Interpreter, run

__all__ = [
    "EngineError",
    "EngineLimitError",
    "ExecResult",
    "Interpreter",
    "run",
]
