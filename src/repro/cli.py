"""Command-line interface.

::

    repro list                         # workloads, predictors, experiments
    repro run E6 [--scale small] [--fast] [--format csv] [--workers 4]
    repro run-experiment E6            # long-form alias of `run`
    repro run-all [--scale tiny] [--output results/] [--workers 4]
    repro simulate qsort --predictor gshare --entries 4096 --sfp --pgu
    repro characterise grep [--scale small]
    repro analyze grep --branches      # region stats + predicate flow
    repro analyze grep --h2p --json    # join H2P sites to static facts
    repro lint [crc grep] [--json]     # predicate-aware static verifier
    repro hotspots lexer --sfp --pgu   # worst-mispredicting sites
    repro profile crc --sfp --pgu      # misprediction attribution
    repro disasm crc [--function main] [--baseline]
    repro telemetry-report run.jsonl   # summarise a --metrics file
    repro telemetry-report ev.jsonl --profile   # replay --events stream
    repro history list                 # stored RunRecords, oldest first
    repro history diff HEAD~0 --baseline docs/results/baseline-run.json
    repro history trend --metric 'E2.MEAN.*'
    repro history gc --keep 50
    repro serve --port 8023 --workers 4   # prediction-as-a-service daemon
    repro serve --trace --slow-request 2  # ... with per-request tracing
    repro trace show spans.jsonl          # span tree + critical path
    repro trace list spans.jsonl          # one line per trace
    repro top [--once]                    # live daemon dashboard
    repro clear-cache

``run``, ``run-all`` and ``simulate`` accept ``--metrics out.jsonl``
(phase spans plus a final merged-counter snapshot as JSONL, see
``docs/observability.md``), ``--trace spans.jsonl`` (distributed span
records for ``repro trace show``) and ``--record`` (append a RunRecord
to the run-history store, see ``docs/run-history.md``).
"""

import argparse
import sys
from contextlib import ExitStack, contextmanager

from repro import repro_version, telemetry
from repro.compiler import config as config_mod
from repro.experiments import experiment_ids, get_experiment
from repro.predictors import (
    PGUConfig,
    SFPConfig,
    available_predictors,
    make_predictor,
)
from repro.sim import CORES, SimOptions, resolve_core, simulate, use_core
from repro.trace import TraceCache
from repro.workloads import get_workload, workload_names


@contextmanager
def _metrics_scope(args):
    """Telemetry for one CLI invocation.

    A fresh registry is installed either way (so repeated in-process
    invocations don't bleed counters into each other); with
    ``--metrics PATH`` a JSONL sink additionally captures span events
    and, last, a ``metrics`` snapshot of the merged registry.  The
    stream opens with a ``header`` event carrying the harness version
    and the invoked subcommand.  With ``--trace PATH`` tracing is
    switched on for the invocation and the collected span records are
    written to PATH as JSONL on exit (see ``repro trace show``).
    """
    path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    registry = telemetry.MetricsRegistry()
    with ExitStack() as stack:
        stack.enter_context(telemetry.use_registry(registry))
        spans_out = None
        if trace_path:
            # --trace: the whole invocation becomes one trace rooted at
            # the first span opened (e.g. `sweep` or `sim.driver`);
            # workers ship their spans back and everything lands in one
            # mergeable JSONL file for `repro trace show`.
            spans_out = telemetry.SpanCollector()
            stack.enter_context(telemetry.use_tracing(True))
            stack.enter_context(telemetry.use_collector(spans_out))
        sink = None
        if path:
            sink = stack.enter_context(telemetry.JsonlSink(path))
            stack.enter_context(telemetry.use_sink(sink))
            sink.emit({
                "event": "header",
                "schema": 1,
                "version": repro_version(),
                "command": getattr(args, "command", ""),
            })
        try:
            yield registry
        finally:
            if sink is not None:
                sink.emit({"event": "metrics", **registry.snapshot()})
            if spans_out is not None:
                spans_out.write_jsonl(trace_path)
    if path:
        print(f"metrics written to {path}", file=sys.stderr)
    if trace_path:
        print(f"trace written to {trace_path}", file=sys.stderr)


@contextmanager
def _record_scope(args, kind, label, compile_config="hyperblock",
                  matrix=None):
    """Record one invocation into the run-history store.

    Yields a :class:`~repro.runstore.RunRecorder` (or ``None`` without
    ``--record``); the body adds its results, and on clean exit the
    sealed record — wall time, telemetry snapshot of the *current*
    registry, envelope — is atomically appended to the store.  Must be
    entered inside :func:`_metrics_scope` so the snapshot sees the
    invocation's fresh registry.
    """
    if not getattr(args, "record", False):
        yield None
        return
    from repro.runstore import RunRecorder, RunStore

    recorder = RunRecorder(
        kind, label,
        scale=getattr(args, "scale", ""),
        compile_config=compile_config,
        command="repro " + " ".join(getattr(args, "_argv", ())),
        matrix=matrix,
    )
    # Envelope-only: fast cores are bit-identical to the object core,
    # so the run id stays the same whichever core produced the record.
    recorder.record.sim_core = resolve_core(getattr(args, "core", None))
    with recorder.timed():
        yield recorder
    record = recorder.finish(telemetry.get_registry())
    path = RunStore(getattr(args, "store", None)).add(record)
    print(f"recorded run {record.run_id} -> {path}", file=sys.stderr)


def _cmd_list(args) -> int:
    print("workloads:")
    for name in workload_names():
        workload = get_workload(name)
        print(f"  {name:12s} {workload.description}")
    print("\npredictors:")
    print("  " + ", ".join(available_predictors()))
    print("\nexperiments:")
    for exp_id in experiment_ids():
        spec = get_experiment(exp_id).SPEC
        print(f"  {exp_id:4s} {spec.title}")
    return 0


def _run_one(exp_id: str, args) -> "ExperimentResult":  # noqa: F821
    from repro.experiments.report import render, write_result

    module = get_experiment(exp_id)
    kwargs = {"scale": args.scale}
    if args.workloads:
        kwargs["workloads"] = args.workloads.split(",")
    run = module.run
    params = run.__code__.co_varnames[: run.__code__.co_argcount]
    if "fast" in params:
        kwargs["fast"] = args.fast
    workers = getattr(args, "workers", None)
    if workers is not None and "workers" in params:
        kwargs["workers"] = workers
    result = run(**kwargs)
    fmt = getattr(args, "format", "table") or "table"
    output = getattr(args, "output", None)
    if output:
        path = write_result(result, output, fmt if fmt != "table" else "csv")
        print(f"wrote {path}")
    print(render(result, fmt))
    print()
    return result


def _cmd_run_experiment(args) -> int:
    label = get_experiment(args.id).SPEC.id
    with _metrics_scope(args):
        with use_core(getattr(args, "core", None)):
            with _record_scope(args, "experiment", label) as recorder:
                result = _run_one(args.id, args)
                if recorder is not None:
                    recorder.add_experiment(result)
    return 0


def _cmd_run_all(args) -> int:
    with _metrics_scope(args):
        with use_core(getattr(args, "core", None)):
            with _record_scope(args, "experiment", "run-all") as recorder:
                for exp_id in experiment_ids():
                    result = _run_one(exp_id, args)
                    if recorder is not None:
                        recorder.add_experiment(result)
    return 0


def _cmd_simulate(args) -> int:
    with _metrics_scope(args):
        workload = get_workload(args.workload)
        predictor = make_predictor(args.predictor, entries=args.entries)
        options = SimOptions(
            distance=args.distance,
            sfp=SFPConfig() if args.sfp else None,
            pgu=PGUConfig() if args.pgu else None,
        )
        matrix = {
            "workload": args.workload,
            "predictor": predictor.describe(),
            "frontend": options.describe(),
        }
        with _record_scope(
            args, "simulate", args.workload,
            compile_config="baseline" if args.baseline else "hyperblock",
            matrix=matrix,
        ) as recorder:
            trace = workload.trace(
                scale=args.scale, hyperblocks=not args.baseline
            )
            result = simulate(
                trace, predictor, options, core=args.core
            )
            if recorder is not None:
                recorder.add_sim_result(result, prefix=args.workload)
    print(f"workload    : {result.workload} ({args.scale})")
    print(f"predictor   : {predictor.describe()}")
    print(f"front end   : {options.describe()}")
    print(f"branches    : {result.branches}")
    print(f"mispredicts : {result.mispredictions}"
          f" ({result.misprediction_rate:.4f})")
    print(f"mpki        : {result.mpki:.2f}")
    if args.sfp:
        print(f"squashed    : {result.squashed}"
              f" ({result.squash_coverage:.4f})")
    return 0


def _cmd_characterise(args) -> int:
    workload = get_workload(args.workload)
    trace = workload.trace(scale=args.scale, hyperblocks=not args.baseline)
    for key, value in trace.summary().items():
        print(f"{key:22s} {value}")
    return 0


def _cmd_hotspots(args) -> int:
    from repro.isa.printer import format_instruction
    from repro.sim.hotspots import top_hotspots

    workload = get_workload(args.workload)
    trace = workload.trace(scale=args.scale, hyperblocks=not args.baseline)
    predictor = make_predictor(args.predictor, entries=args.entries)
    options = SimOptions(
        sfp=SFPConfig() if args.sfp else None,
        pgu=PGUConfig() if args.pgu else None,
    )
    compiled = workload.compile(
        args.scale,
        config_mod.BASELINE if args.baseline else config_mod.HYPERBLOCK,
    )
    sites = top_hotspots(trace, predictor, options, limit=args.limit)
    print(f"{'pc':>6s} {'execs':>8s} {'taken%':>7s} {'misp':>8s} "
          f"{'rate':>7s} {'sq':>6s}  site")
    for site in sites:
        instr = compiled.executable.code[site.pc]
        marker = "R" if site.region_based else " "
        print(f"{site.pc:>6d} {site.executions:>8d} "
              f"{100 * site.taken_rate:6.1f}% {site.mispredictions:>8d} "
              f"{site.misprediction_rate:7.4f} {site.squashed:>6d} "
              f"{marker} {format_instruction(instr)}")
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.profiler import (
        AggregatingCollector,
        JsonlEventCollector,
        ProfileSpec,
        SiteTable,
        TeeCollector,
    )
    from repro.sim.stats import format_result_table
    from repro.telemetry import render_profile_markdown
    from repro.trace.container import BranchClass

    workload = get_workload(args.workload)
    config = (
        config_mod.BASELINE if args.baseline else config_mod.HYPERBLOCK
    )
    spec = ProfileSpec(rate=args.rate, seed=args.seed)
    with _metrics_scope(args):
        with telemetry.span("profile", workload=args.workload):
            compiled = workload.compile(args.scale, config)
            sites = SiteTable.from_executable(compiled.executable)
            trace = workload.trace(
                scale=args.scale, hyperblocks=not args.baseline
            )
            predictor = make_predictor(args.predictor, entries=args.entries)
            options = SimOptions(
                distance=args.distance,
                sfp=SFPConfig() if args.sfp else None,
                pgu=PGUConfig() if args.pgu else None,
            )
            aggregating = AggregatingCollector(
                spec, sites=sites, workload=workload.name
            )
            collector = aggregating
            if args.events:
                collector = TeeCollector([
                    aggregating,
                    JsonlEventCollector(
                        args.events, spec, sites=sites,
                        workload=workload.name,
                    ),
                ])
            with collector:
                result = simulate(
                    trace, predictor, options, collector=collector
                )
    aggregator = aggregating.aggregator
    if args.events:
        print(f"events written to {args.events}", file=sys.stderr)

    if args.json:
        print(json.dumps({
            "workload": workload.name,
            "scale": args.scale,
            "compile_config": "baseline" if args.baseline else "hyperblock",
            "predictor": predictor.describe(),
            "frontend": options.describe(),
            "simulated": {
                "branches": result.branches,
                "mispredictions": result.mispredictions,
                "squashed": result.squashed,
            },
            "attribution": aggregator.to_dict(),
        }, indent=2))
        return 0
    if args.markdown:
        print(render_profile_markdown(
            aggregator, top=args.top,
            title=(
                f"{workload.name} ({args.scale}) — "
                f"{predictor.describe()}, {options.describe()}"
            ),
        ))
        return 0

    totals = aggregator.totals()
    print(f"workload    : {workload.name} ({args.scale}, "
          f"{'baseline' if args.baseline else 'hyperblock'})")
    print(f"predictor   : {predictor.describe()}")
    print(f"front end   : {options.describe()}")
    print(f"sampling    : {spec.describe()}")
    print(f"events      : {totals['events']}  (sites: "
          f"{totals['static_sites']})")
    print(f"mispredicts : {totals['mispredictions']}  filtered: "
          f"{totals['filtered']}")
    print(f"H2P         : top {aggregator.h2p_count(0.9)} site(s) cover "
          f"90% of mispredictions")
    print()
    mispredictions = totals["mispredictions"]
    covered = 0
    rows = []
    for record in aggregator.top_branches(args.top):
        covered += record.mispredictions
        rows.append({
            "pc": record.pc,
            "function": record.function or "-",
            "region": record.region_id if record.region_id >= 0 else "",
            "class": BranchClass(record.branch_class).name.lower(),
            "execs": record.executions,
            "misp": record.mispredictions,
            "rate": record.misprediction_rate,
            "filtered": record.filtered,
            "cum%": (
                f"{100 * covered / mispredictions:.1f}"
                if mispredictions else "-"
            ),
        })
    print(format_result_table(
        rows,
        ["pc", "function", "region", "class", "execs", "misp", "rate",
         "filtered", "cum%"],
        title=f"top {len(rows)} mispredicting branches",
    ))
    sfp_stats = aggregator.sfp_breakdown()
    if sfp_stats["filtered_correct"] or sfp_stats["filtered_wrong"]:
        print()
        print(f"sfp         : {sfp_stats['filtered_correct']} squashed "
              f"correct, {sfp_stats['filtered_wrong']} wrong "
              f"(accuracy {sfp_stats['squash_accuracy']:.4f}, coverage "
              f"{sfp_stats['squash_coverage']:.4f})")
    pgu_stats = aggregator.pgu_breakdown()
    if any(v["events"] for k, v in pgu_stats.items() if k != "off"):
        parts = [
            f"{path} {data['events']} @ {data['accuracy']:.4f}"
            for path, data in pgu_stats.items()
            if data["events"]
        ]
        print(f"pgu         : {', '.join(parts)}")
    return 0


def _analyze_h2p(args, workload, executable, predflow):
    """Profile the workload and join the worst sites onto static facts."""
    from repro.profiler import (
        AggregatingCollector,
        ProfileSpec,
        SiteTable,
        join_static_facts,
    )

    trace = workload.trace(
        scale=args.scale, hyperblocks=not args.baseline
    )
    predictor = make_predictor(args.predictor, entries=args.entries)
    options = SimOptions(
        distance=args.distance, sfp=SFPConfig(), pgu=PGUConfig()
    )
    collector = AggregatingCollector(
        ProfileSpec(rate=1),
        sites=SiteTable.from_executable(executable),
        workload=workload.name,
    )
    with collector:
        simulate(trace, predictor, options, collector=collector)
    ranked = collector.aggregator.top_branches(args.top)
    return join_static_facts(ranked, predflow, distance=args.distance)


def _cmd_analyze(args) -> int:
    import json

    from repro.analysis.predflow import analyze_executable
    from repro.compiler.analysis import (
        analyze_executable as analyze_regions,
    )

    workload = get_workload(args.workload)
    config = (
        config_mod.BASELINE if args.baseline else config_mod.HYPERBLOCK
    )
    with _metrics_scope(args):
        with telemetry.span("analyze", workload=args.workload):
            compiled = workload.compile(args.scale, config)
            executable = compiled.executable
            regions = analyze_regions(executable)
            predflow = analyze_executable(
                executable,
                name=workload.name,
                distance=args.distance,
            )
            h2p = (
                _analyze_h2p(args, workload, executable, predflow)
                if args.h2p
                else None
            )

    if args.json:
        payload = predflow.to_dict()
        payload.update(
            workload=workload.name,
            scale=args.scale,
            compile_config=(
                "baseline" if args.baseline else "hyperblock"
            ),
            regions=regions.summary(),
        )
        if h2p is not None:
            payload["h2p"] = h2p
        print(json.dumps(payload, indent=2))
        return 0

    for key, value in regions.summary().items():
        print(f"{key:22s} {value}")
    summary = predflow.summary()
    print()
    print(f"predflow @ distance {summary['distance']}")
    for key in (
        "branches", "region_branches", "must_not_taken", "must_taken",
        "complement_only", "define_sites",
    ):
        print(f"{key:22s} {summary[key]}")
    verdicts = ", ".join(
        f"{name}={count}"
        for name, count in summary["verdicts"].items()
        if count
    )
    print(f"{'sfp_verdicts':22s} {verdicts}")
    print(
        f"{'sfp_coverage_bound':22s} "
        f"{summary['sfp_site_coverage_bound']:.3f}"
    )
    if args.regions:
        print()
        print(f"{'function':16s} {'region':>6s} {'size':>5s} {'cmps':>5s} "
              f"{'guarded':>7s} {'branches':>8s}")
        for region in regions.regions:
            print(f"{region.function:16s} {region.region:>6d} "
                  f"{region.instructions:>5d} {region.compares:>5d} "
                  f"{region.guarded_instructions:>7d} "
                  f"{region.region_branches:>8d}")
    if args.branches:
        print()
        print(f"{'pc':>6s} {'function':16s} {'guard':>5s} {'value':>11s} "
              f"{'avail':>9s} {'verdict':>9s}")
        for facts in predflow.branches():
            hi = (
                "inf" if facts.max_avail >= 1 << 10 else facts.max_avail
            )
            print(f"{facts.pc:>6d} {facts.function:16s} "
                  f"p{facts.guard:<4d} {facts.guard_value:>11s} "
                  f"{facts.min_avail:>4}..{hi:<4} "
                  f"{facts.verdict(args.distance):>9s}")
    if h2p is not None:
        print()
        print(f"{'pc':>6s} {'misp':>8s} {'execs':>8s} {'value':>11s} "
              f"{'verdict':>9s}")
        for row in h2p:
            static = row["static"]
            value = static["guard_value"] if static else "-"
            verdict = static["sfp_verdict"] if static else "unknown"
            print(f"{row['pc']:>6d} {row['mispredictions']:>8d} "
                  f"{row['executions']:>8d} {value:>11s} {verdict:>9s}")
    return 0


def _lint_targets(args):
    """(name, workload) pairs selected by a ``repro lint`` invocation."""
    names = args.workloads or list(workload_names())
    targets = []
    for name in names:
        targets.append((name, get_workload(name)))
    if args.synthetic:
        from repro.workloads.synthetic import MAX_SPACING, make_synthetic

        for bias, noise, spacing in (
            (50, 0, 0),
            (50, 20, 4),
            (80, 10, MAX_SPACING),
        ):
            workload = make_synthetic(bias, noise, spacing)
            targets.append((workload.name, workload))
    return targets


def _cmd_lint(args) -> int:
    import json

    from repro.analysis import Severity, lint_executable

    try:
        targets = _lint_targets(args)
    except KeyError:
        known = ", ".join(workload_names())
        print(
            f"unknown workload; choose from: {known}", file=sys.stderr
        )
        return 2
    config = (
        config_mod.BASELINE if args.baseline else config_mod.HYPERBLOCK
    )
    min_severity = Severity[args.min_severity.upper()]
    reports = []
    with _metrics_scope(args):
        with telemetry.span("lint-run", programs=len(targets)):
            for name, workload in targets:
                compiled = workload.compile(args.scale, config)
                reports.append(
                    lint_executable(compiled.executable, name=name)
                )
    totals = {severity.label: 0 for severity in Severity}
    for report in reports:
        for severity, count in report.counts().items():
            totals[severity] += count
    if args.json:
        print(
            json.dumps(
                {
                    "programs": [r.to_dict() for r in reports],
                    "totals": totals,
                },
                indent=2,
            )
        )
    else:
        for report in reports:
            print(report.render(min_severity=min_severity))
        print(
            f"\nlinted {len(reports)} program(s): {totals['error']} "
            f"error(s), {totals['warning']} warning(s), "
            f"{totals['info']} info"
        )
    return 1 if totals["error"] else 0


def _cmd_disasm(args) -> int:
    from repro.isa.printer import disassemble

    workload = get_workload(args.workload)
    config = (
        config_mod.BASELINE if args.baseline else config_mod.HYPERBLOCK
    )
    compiled = workload.compile(args.scale, config)
    if args.function:
        function = compiled.program.functions.get(args.function)
        if function is None:
            print(f"no function {args.function!r}", file=sys.stderr)
            return 1
        print(disassemble(function))
    else:
        print(disassemble(compiled.executable))
    return 0


def _cmd_telemetry_report(args) -> int:
    try:
        if args.profile:
            report = telemetry.render_profile_events(args.path,
                                                     top=args.top)
        else:
            # Lenient parse: a truncated/corrupted line (a crashed or
            # still-writing producer) is skipped with a warning, and the
            # report renders from whatever parsed.  Only a stream with
            # *no* valid events is an error.
            events, skipped = telemetry.read_events_lenient(args.path)
            if skipped:
                print(
                    f"warning: skipped {skipped} malformed line(s) in "
                    f"{args.path}",
                    file=sys.stderr,
                )
            if not events and skipped:
                print(
                    f"{args.path}: no valid telemetry events",
                    file=sys.stderr,
                )
                return 1
            report = telemetry.summarize_events(events)
    except FileNotFoundError:
        print(f"no such metrics file: {args.path}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(report)
    return 0


def _cmd_history(args) -> int:
    import json

    from repro import runstore

    store = runstore.RunStore(getattr(args, "store", None))
    command = args.history_command

    if command == "list":
        records = store.records(kind=args.kind, label=args.label)
        if args.json:
            print(json.dumps(
                [r.to_dict() for r in records], indent=2, sort_keys=True
            ))
            return 0
        if not records:
            print(f"(no runs in {store.root})")
            return 0
        print(f"{'run_id':12s} {'timestamp':>24s} {'kind':10s} "
              f"{'label':10s} {'scale':6s} {'metrics':>7s} "
              f"{'wall_s':>8s}  git")
        for record in records:
            sha = record.git.get("sha", "")[:10]
            dirty = "+" if record.git.get("dirty") else ""
            print(f"{record.run_id:12s} {record.timestamp:>24s} "
                  f"{record.kind:10s} {record.label:10s} "
                  f"{record.scale:6s} {len(record.metrics):>7d} "
                  f"{record.wall_seconds:>8.2f}  {sha}{dirty}")
        return 0

    if command == "show":
        try:
            record = store.resolve(
                args.run, kind=args.kind, label=args.label
            )
        except (KeyError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0

    if command == "diff":
        try:
            current = store.resolve(
                args.run, kind=args.kind, label=args.label
            )
        except (KeyError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        baseline_selector = args.baseline or args.against
        if baseline_selector:
            try:
                baseline = store.resolve(
                    baseline_selector, kind=args.kind, label=args.label
                )
            except (KeyError, ValueError) as exc:
                print(str(exc), file=sys.stderr)
                return 2
            diff = runstore.diff_runs(
                current, baseline,
                runstore.Thresholds(
                    absolute=args.abs, relative=args.rel
                ),
            )
        else:
            # Rolling mode: noise model from the runs stored *before*
            # the selected one, within the same kind/label series.
            records = store.records(
                kind=args.kind or current.kind,
                label=args.label or current.label,
            )
            history = [
                r for r in records
                if (r.timestamp, r.run_id)
                < (current.timestamp, current.run_id)
            ]
            if not history:
                print(
                    "no earlier runs to seed the noise model; pass "
                    "--baseline FILE or a second selector",
                    file=sys.stderr,
                )
                return 2
            diff = runstore.diff_against_history(
                current, history,
                sigma=args.sigma, absolute_floor=args.abs,
                window=args.window,
            )
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
        else:
            print(runstore.render_diff(diff, verbose=args.verbose))
        return 0 if diff.ok else 1

    if command == "trend":
        records = store.records(kind=args.kind, label=args.label)
        if args.last:
            records = records[-args.last:]
        if args.json:
            print(runstore.render_trend_json(records, args.metric))
        else:
            print(runstore.render_trend_markdown(records, args.metric))
        return 0

    if command == "gc":
        victims = store.gc(keep=args.keep, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {len(victims)} run record(s), keeping "
              f"{args.keep} newest")
        for path in victims:
            print(f"  {path.name}")
        return 0

    raise AssertionError(f"unhandled history command {command!r}")


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        core=args.core,
        store=args.store,
        max_queue_depth=args.queue_depth,
        job_timeout=args.job_timeout,
        idle_timeout=args.idle_timeout,
        tracing=args.trace,
        trace_log=args.trace_log,
        slow_request_seconds=args.slow_request,
    )
    # The daemon runs under one long-lived registry; with --metrics the
    # final serve.* snapshot lands in the JSONL stream on shutdown,
    # exactly like every other instrumented subcommand.
    with _metrics_scope(args) as registry:
        return run_server(config, registry=registry)


def _cmd_trace(args) -> int:
    from repro.telemetry import read_spans, render_trace, render_trace_list

    try:
        records = read_spans(args.path)
    except FileNotFoundError:
        print(f"no such trace file: {args.path}", file=sys.stderr)
        return 1
    if not records:
        print(f"{args.path}: no trace spans", file=sys.stderr)
        return 1
    if args.trace_command == "list":
        print(render_trace_list(records))
    else:
        print(render_trace(records, trace_id=args.trace_id))
    return 0


def _cmd_top(args) -> int:
    from repro.serve.top import run_top

    return run_top(
        host=args.host, port=args.port,
        interval=args.interval, once=args.once,
    )


def _cmd_clear_cache(args) -> int:
    removed = TraceCache().clear()
    print(f"removed {removed} cached trace(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Incorporating Predicate Information into "
            "Branch Predictors' (HPCA-9, 2003)"
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro {repro_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/predictors/experiments")

    for name, help_text in (
        ("run", "run one experiment"),
        ("run-experiment", "run one experiment (alias of `run`)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("id", help="experiment id, e.g. E6")
        p.add_argument("--scale", default="small",
                       choices=("tiny", "small", "ref"))
        p.add_argument("--fast", action="store_true")
        p.add_argument("--workloads", help="comma-separated subset")
        p.add_argument("--workers", type=int, default=None,
                       help="sweep worker processes (0 = all CPUs; default "
                            "$REPRO_SWEEP_WORKERS or serial)")
        p.add_argument("--core", default=None, choices=CORES,
                       help="simulation core (default $REPRO_SIM_CORE or "
                            "object); fast cores are bit-identical")
        p.add_argument("--format", default="table",
                       choices=("table", "csv", "json"))
        p.add_argument("--output", help="also write the export to this dir")
        p.add_argument("--metrics", metavar="PATH",
                       help="append telemetry events (JSONL) to PATH")
        p.add_argument("--trace", metavar="PATH",
                       help="trace the invocation; append span records "
                            "(JSONL) to PATH for `repro trace show`")
        p.add_argument("--record", action="store_true",
                       help="append a RunRecord to the run-history store")
        p.add_argument("--store", metavar="DIR",
                       help="run-history store root (default "
                            "$REPRO_RUNSTORE or .repro/runs)")

    p = sub.add_parser("run-all", help="run every experiment")
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--fast", action="store_true")
    p.add_argument("--workloads", help="comma-separated subset")
    p.add_argument("--workers", type=int, default=None,
                   help="sweep worker processes (0 = all CPUs; default "
                        "$REPRO_SWEEP_WORKERS or serial)")
    p.add_argument("--core", default=None, choices=CORES,
                   help="simulation core (default $REPRO_SIM_CORE or "
                        "object); fast cores are bit-identical")
    p.add_argument("--format", default="table",
                   choices=("table", "csv", "json"))
    p.add_argument("--output", help="also write each export to this dir")
    p.add_argument("--metrics", metavar="PATH",
                   help="append telemetry events (JSONL) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="trace the invocation; append span records "
                        "(JSONL) to PATH for `repro trace show`")
    p.add_argument("--record", action="store_true",
                   help="append a RunRecord to the run-history store")
    p.add_argument("--store", metavar="DIR",
                   help="run-history store root (default "
                        "$REPRO_RUNSTORE or .repro/runs)")

    p = sub.add_parser("simulate", help="one (workload, predictor) run")
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--predictor", default="gshare",
                   choices=available_predictors())
    p.add_argument("--entries", type=int, default=4096)
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--distance", type=int, default=4)
    p.add_argument("--sfp", action="store_true")
    p.add_argument("--pgu", action="store_true")
    p.add_argument("--core", default=None, choices=CORES,
                   help="simulation core (default $REPRO_SIM_CORE or "
                        "object); fast cores are bit-identical")
    p.add_argument("--baseline", action="store_true",
                   help="use the non-predicated compile")
    p.add_argument("--metrics", metavar="PATH",
                   help="append telemetry events (JSONL) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="trace the invocation; append span records "
                        "(JSONL) to PATH for `repro trace show`")
    p.add_argument("--record", action="store_true",
                   help="append a RunRecord to the run-history store")
    p.add_argument("--store", metavar="DIR",
                   help="run-history store root (default "
                        "$REPRO_RUNSTORE or .repro/runs)")

    p = sub.add_parser("characterise", help="trace summary of a workload")
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--baseline", action="store_true")

    p = sub.add_parser("hotspots", help="worst-mispredicting branch sites")
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--predictor", default="gshare",
                   choices=available_predictors())
    p.add_argument("--entries", type=int, default=1024)
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--sfp", action="store_true")
    p.add_argument("--pgu", action="store_true")
    p.add_argument("--baseline", action="store_true")

    p = sub.add_parser(
        "profile",
        help="event-level misprediction attribution for one workload",
    )
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--predictor", default="gshare",
                   choices=available_predictors())
    p.add_argument("--entries", type=int, default=4096)
    p.add_argument("--distance", type=int, default=4)
    p.add_argument("--sfp", action="store_true")
    p.add_argument("--pgu", action="store_true")
    p.add_argument("--baseline", action="store_true",
                   help="use the non-predicated compile")
    p.add_argument("--rate", type=int, default=1,
                   help="sample 1-in-N branch events (default 1 = all)")
    p.add_argument("--seed", type=int, default=0,
                   help="sampling phase; same seed+rate = same events")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="show the K worst branches (default 10)")
    p.add_argument("--json", action="store_true",
                   help="full attribution report as JSON")
    p.add_argument("--markdown", action="store_true",
                   help="render the markdown report instead of tables")
    p.add_argument("--events", metavar="PATH",
                   help="also write sampled events (JSONL) to PATH")
    p.add_argument("--metrics", metavar="PATH",
                   help="append telemetry events (JSONL) to PATH")

    p = sub.add_parser(
        "analyze",
        help="static region statistics and predicate-flow facts",
    )
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--baseline", action="store_true")
    p.add_argument("--regions", action="store_true",
                   help="also list every region")
    p.add_argument("--branches", action="store_true",
                   help="also list per-branch predicate-flow facts")
    p.add_argument("--distance", type=int, default=4,
                   help="availability distance D for SFP verdicts")
    p.add_argument("--h2p", action="store_true",
                   help="profile the workload and join the worst "
                        "sites onto their static facts")
    p.add_argument("--top", type=int, default=10,
                   help="H2P sites to show with --h2p")
    p.add_argument("--predictor", default="gshare",
                   choices=available_predictors(),
                   help="predictor for the --h2p profile")
    p.add_argument("--entries", type=int, default=4096)
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--metrics", metavar="PATH",
                   help="append telemetry events (JSONL) to PATH")

    p = sub.add_parser(
        "lint", help="predicate-aware static verification of workloads"
    )
    p.add_argument(
        "workloads",
        nargs="*",
        metavar="workload",
        help="workloads to lint (default: all bundled workloads)",
    )
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--baseline", action="store_true",
                   help="lint the non-predicated compile")
    p.add_argument("--synthetic", action="store_true",
                   help="also lint representative synthetic workloads")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--min-severity", default="info",
                   choices=("info", "warning", "error"),
                   help="hide text diagnostics below this severity")
    p.add_argument("--metrics", metavar="PATH",
                   help="append telemetry events (JSONL) to PATH")

    p = sub.add_parser("disasm", help="disassemble a compiled workload")
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--function", help="limit to one function")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "ref"))
    p.add_argument("--baseline", action="store_true")

    p = sub.add_parser(
        "history",
        help="run-history store: list/show/diff/trend/gc",
    )
    hsub = p.add_subparsers(dest="history_command", required=True)

    def _store_args(sp, filters=True):
        sp.add_argument("--store", metavar="DIR",
                        help="store root (default $REPRO_RUNSTORE or "
                             ".repro/runs)")
        if filters:
            sp.add_argument("--kind", choices=("experiment", "simulate",
                                               "sweep", "benchmark"),
                            help="restrict to one record kind")
            sp.add_argument("--label", help="restrict to one label "
                                            "(e.g. E2 or a workload)")

    hp = hsub.add_parser("list", help="stored runs, oldest first")
    _store_args(hp)
    hp.add_argument("--json", action="store_true",
                    help="full records as JSON")

    hp = hsub.add_parser("show", help="print one stored run")
    hp.add_argument("run", help="HEAD[~N], a run-id prefix, or a path")
    _store_args(hp)

    hp = hsub.add_parser(
        "diff",
        help="compare a run against a baseline or the rolling history",
    )
    hp.add_argument("run", help="current run: HEAD[~N], id prefix, path")
    hp.add_argument("against", nargs="?", default=None,
                    help="baseline selector (default: rolling noise "
                         "model over earlier runs)")
    hp.add_argument("--baseline", metavar="FILE",
                    help="baseline record file (e.g. the committed "
                         "golden docs/results/baseline-run.json)")
    hp.add_argument("--abs", type=float,
                    default=0.0005, metavar="X",
                    help="absolute regression threshold (default "
                         "%(default)s)")
    hp.add_argument("--rel", type=float, default=0.02, metavar="F",
                    help="relative regression threshold (default "
                         "%(default)s)")
    hp.add_argument("--sigma", type=float, default=3.0, metavar="K",
                    help="rolling mode: flag beyond mean + K*sigma "
                         "(default %(default)s)")
    hp.add_argument("--window", type=int, default=10, metavar="N",
                    help="rolling mode: runs seeding the noise model "
                         "(default %(default)s)")
    hp.add_argument("--json", action="store_true",
                    help="machine-readable diff")
    hp.add_argument("--verbose", action="store_true",
                    help="also list unchanged metrics")
    _store_args(hp)

    hp = hsub.add_parser("trend", help="per-metric timelines")
    hp.add_argument("--metric", metavar="PATTERN",
                    help="fnmatch filter over metric names")
    hp.add_argument("--last", type=int, default=0, metavar="N",
                    help="only the newest N runs (default: all)")
    hp.add_argument("--json", action="store_true",
                    help="JSON timelines instead of markdown")
    _store_args(hp)

    hp = hsub.add_parser("gc", help="drop the oldest stored runs")
    hp.add_argument("--keep", type=int, default=50, metavar="N",
                    help="records to retain (default %(default)s)")
    hp.add_argument("--dry-run", action="store_true",
                    help="list victims without deleting")
    _store_args(hp, filters=False)

    p = sub.add_parser(
        "serve",
        help="run the prediction-as-a-service HTTP daemon",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default %(default)s)")
    p.add_argument("--port", type=int, default=8023,
                   help="bind port, 0 = ephemeral (default %(default)s)")
    p.add_argument("--workers", type=int, default=2,
                   help="simulation pool processes; 0 runs jobs inline "
                        "on a thread (default %(default)s)")
    p.add_argument("--core", default=None, choices=CORES,
                   help="simulation core for every job (default "
                        "$REPRO_SIM_CORE or object); resolved once and "
                        "threaded into pool workers")
    p.add_argument("--store", metavar="DIR",
                   help="run-history store doubling as the result cache "
                        "(default $REPRO_RUNSTORE or .repro/runs)")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="queued-job admission limit before HTTP 429 "
                        "(default %(default)s)")
    p.add_argument("--job-timeout", type=float, default=600.0,
                   metavar="S",
                   help="per-job execution ceiling in seconds "
                        "(default %(default)s)")
    p.add_argument("--idle-timeout", type=float, default=60.0,
                   metavar="S",
                   help="keep-alive connection idle ceiling in seconds "
                        "(default %(default)s)")
    p.add_argument("--metrics", metavar="PATH",
                   help="append serve telemetry events (JSONL) to PATH "
                        "on shutdown")
    p.add_argument("--trace", action="store_true",
                   help="record a span tree per request (browse with "
                        "GET /v1/traces; also $REPRO_TRACING=1)")
    p.add_argument("--trace-log", metavar="PATH",
                   help="with --trace: also append every span record "
                        "(JSONL) to PATH as it completes")
    p.add_argument("--slow-request", type=float, default=None,
                   metavar="S",
                   help="with --trace: dump the span tree of any "
                        "request slower than S seconds to stderr")

    p = sub.add_parser(
        "trace", help="inspect span JSONL written by --trace"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)
    tp = tsub.add_parser("show", help="render span tree + critical path")
    tp.add_argument("path", help="span JSONL file")
    tp.add_argument("--trace-id", default=None,
                    help="render only this trace (default: all)")
    tp = tsub.add_parser("list", help="one summary line per trace")
    tp.add_argument("path", help="span JSONL file")

    p = sub.add_parser(
        "top", help="live dashboard for a running serve daemon"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="daemon address (default %(default)s)")
    p.add_argument("--port", type=int, default=8023,
                   help="daemon port (default %(default)s)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh period in seconds (default %(default)s)")
    p.add_argument("--once", action="store_true",
                   help="print one plain-text snapshot and exit "
                        "(no curses; usable in scripts/CI)")

    p = sub.add_parser("telemetry-report",
                       help="summarise a --metrics JSONL file")
    p.add_argument("path", help="JSONL file written by --metrics")
    p.add_argument("--profile", action="store_true",
                   help="treat PATH as a `repro profile --events` file "
                        "and render the attribution report")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="with --profile: show the K worst branches")

    sub.add_parser("clear-cache", help="delete cached traces")
    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run_experiment,
    "run-experiment": _cmd_run_experiment,
    "run-all": _cmd_run_all,
    "simulate": _cmd_simulate,
    "characterise": _cmd_characterise,
    "hotspots": _cmd_hotspots,
    "profile": _cmd_profile,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "disasm": _cmd_disasm,
    "history": _cmd_history,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "telemetry-report": _cmd_telemetry_report,
    "clear-cache": _cmd_clear_cache,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(argv)
    args._argv = argv  # full invocation, recorded into RunRecords
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
