"""AST node definitions for ``minic``.

Every node carries a ``node_id`` that is unique within a parse and stable
across parses of the same source (the parser numbers nodes in creation
order).  Profiling and if-conversion decisions are keyed on these ids, so
the profile collected from the baseline compile can drive the hyperblock
compile of the *same* source.
"""

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    node_id: int
    line: int


# -- expressions -------------------------------------------------------------


@dataclass
class IntLit(Node):
    value: int


@dataclass
class VarRef(Node):
    name: str


@dataclass
class ArrayRef(Node):
    name: str
    index: "Expr"


@dataclass
class Unary(Node):
    op: str  #: one of ``- ! ~``
    operand: "Expr"


@dataclass
class Binary(Node):
    op: str  #: arithmetic/bitwise/comparison operator
    left: "Expr"
    right: "Expr"


@dataclass
class Logical(Node):
    op: str  #: ``&&`` or ``||``
    left: "Expr"
    right: "Expr"


@dataclass
class Call(Node):
    name: str
    args: List["Expr"]


Expr = (IntLit, VarRef, ArrayRef, Unary, Binary, Logical, Call)

#: Comparison operators (produce 0/1 and map to CMP relations).
COMPARISONS = frozenset({"<", "<=", ">", ">=", "==", "!="})


# -- statements ---------------------------------------------------------------


@dataclass
class VarDecl(Node):
    name: str
    init: Optional["Expr"]


@dataclass
class Assign(Node):
    target: str
    value: "Expr"


@dataclass
class ArrayAssign(Node):
    name: str
    index: "Expr"
    value: "Expr"


@dataclass
class If(Node):
    cond: "Expr"
    then_body: List["Stmt"]
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class While(Node):
    cond: "Expr"
    body: List["Stmt"]


@dataclass
class For(Node):
    init: Optional["Stmt"]
    cond: Optional["Expr"]
    step: Optional["Stmt"]
    body: List["Stmt"]


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Return(Node):
    value: Optional["Expr"]


@dataclass
class ExprStmt(Node):
    expr: "Expr"


Stmt = (
    VarDecl,
    Assign,
    ArrayAssign,
    If,
    While,
    For,
    Break,
    Continue,
    Return,
    ExprStmt,
)


# -- top level ----------------------------------------------------------------


@dataclass
class GlobalDecl(Node):
    name: str
    size: int


@dataclass
class FuncDecl(Node):
    name: str
    params: List[str]
    body: List["Stmt"]


@dataclass
class Module(Node):
    globals: List[GlobalDecl]
    functions: List[FuncDecl]


def walk_expr(expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, (Binary, Logical)):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ArrayRef):
        yield from walk_expr(expr.index)


def contains_call(expr) -> bool:
    """True if any sub-expression is a function call."""
    return any(isinstance(e, Call) for e in walk_expr(expr))


def walk_stmts(stmts):
    """Yield every statement in ``stmts``, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                yield stmt.init
            if stmt.step is not None:
                yield stmt.step
            yield from walk_stmts(stmt.body)
