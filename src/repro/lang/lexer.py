"""Tokenizer for ``minic``."""

import enum
from dataclasses import dataclass
from typing import List


class LexError(Exception):
    """Bad character or malformed literal, with line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class TokenType(enum.Enum):
    INT = "int"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "func",
        "global",
        "var",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_PUNCTS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
]


@dataclass
class Token:
    type: TokenType
    value: str
    line: int

    def __repr__(self):
        return f"Token({self.type.value}, {self.value!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; ``//`` comments run to end of line."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexError(f"bad numeric literal near {source[start:i+1]!r}", line)
            tokens.append(Token(TokenType.INT, source[start:i], line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, line))
            continue
        for punct in _PUNCTS:
            if source.startswith(punct, i):
                tokens.append(Token(TokenType.PUNCT, punct, line))
                i += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token(TokenType.EOF, "", line))
    return tokens
