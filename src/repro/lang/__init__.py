"""``minic`` — the small C-like source language of the benchmark suite.

The language exists to *generate realistic branch behaviour*: signed 64-bit
integers, global word arrays, functions, ``if``/``while``/``for`` control
flow, and boolean operators that lower either to branch ladders (baseline
compile) or to predicate defines (hyperblock compile).

Language rules that matter:

* All values are signed 64-bit integers; arithmetic wraps.
* Division/modulo by zero yield 0 (the machine never faults on a guarded
  divide executed down a false path).
* ``&&`` and ``||`` are *logical* operators whose operands may not contain
  calls: with no side effects in operands, short-circuit and eager
  evaluation are indistinguishable, so the baseline compiler may emit
  branch ladders while the hyperblock compiler evaluates both sides under
  predicates — and both produce identical results.
"""

from repro.lang.lexer import LexError, Token, TokenType, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.sema import SemaError, analyze

__all__ = [
    "LexError",
    "ParseError",
    "SemaError",
    "Token",
    "TokenType",
    "analyze",
    "parse",
    "tokenize",
]
