"""Semantic analysis for ``minic``.

Checks performed:

* every referenced variable is declared (params count as declarations);
  declarations are function-scoped and must precede use;
* no duplicate variable/parameter/global/function names;
* every called function exists with matching arity;
* arrays are always indexed and scalars never are; globals are arrays,
  locals are scalars;
* ``break``/``continue`` appear only inside loops;
* call expressions do not appear inside ``&&``/``||`` operands (the rule
  that makes eager and short-circuit evaluation indistinguishable — see
  :mod:`repro.lang`);
* a ``main`` function with no parameters exists.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.lang import ast


class SemaError(Exception):
    """A semantic rule violation, with line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class ModuleInfo:
    """Symbol information produced by :func:`analyze`."""

    globals: Dict[str, int] = field(default_factory=dict)  #: name -> size
    functions: Dict[str, int] = field(default_factory=dict)  #: name -> arity
    #: per function: declared variable names in declaration order
    function_vars: Dict[str, List[str]] = field(default_factory=dict)


def analyze(module: ast.Module) -> ModuleInfo:
    """Check ``module`` and return its symbol information."""
    info = ModuleInfo()
    for decl in module.globals:
        if decl.name in info.globals:
            raise SemaError(f"duplicate global {decl.name!r}", decl.line)
        if decl.size <= 0:
            raise SemaError(
                f"global {decl.name!r} must have positive size", decl.line
            )
        info.globals[decl.name] = decl.size
    for func in module.functions:
        if func.name in info.functions:
            raise SemaError(f"duplicate function {func.name!r}", func.line)
        if func.name in info.globals:
            raise SemaError(
                f"function {func.name!r} collides with a global", func.line
            )
        info.functions[func.name] = len(func.params)
    if "main" not in info.functions:
        raise SemaError("no 'main' function", module.line)
    if info.functions["main"] != 0:
        raise SemaError("'main' must take no parameters", module.line)
    for func in module.functions:
        info.function_vars[func.name] = _check_function(func, info)
    return info


def _check_function(func: ast.FuncDecl, info: ModuleInfo) -> List[str]:
    declared: List[str] = []
    seen: Set[str] = set()
    for param in func.params:
        if param in seen:
            raise SemaError(
                f"duplicate parameter {param!r} in {func.name}", func.line
            )
        if param in info.globals:
            raise SemaError(
                f"parameter {param!r} shadows a global array", func.line
            )
        seen.add(param)
        declared.append(param)
    _check_stmts(func.body, seen, declared, info, func.name, loop_depth=0)
    return declared


def _check_stmts(stmts, seen, declared, info, fname, loop_depth):
    for stmt in stmts:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in seen:
                raise SemaError(
                    f"duplicate variable {stmt.name!r} in {fname}", stmt.line
                )
            if stmt.name in info.globals:
                raise SemaError(
                    f"variable {stmt.name!r} shadows a global array",
                    stmt.line,
                )
            if stmt.init is not None:
                _check_expr(stmt.init, seen, info, fname)
            seen.add(stmt.name)
            declared.append(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if stmt.target not in seen:
                if stmt.target in info.globals:
                    raise SemaError(
                        f"global array {stmt.target!r} needs an index",
                        stmt.line,
                    )
                raise SemaError(
                    f"assignment to undeclared variable {stmt.target!r}",
                    stmt.line,
                )
            _check_expr(stmt.value, seen, info, fname)
        elif isinstance(stmt, ast.ArrayAssign):
            if stmt.name not in info.globals:
                raise SemaError(
                    f"{stmt.name!r} is not a global array", stmt.line
                )
            _check_expr(stmt.index, seen, info, fname)
            _check_expr(stmt.value, seen, info, fname)
        elif isinstance(stmt, ast.If):
            _check_expr(stmt.cond, seen, info, fname)
            _check_stmts(stmt.then_body, seen, declared, info, fname,
                         loop_depth)
            _check_stmts(stmt.else_body, seen, declared, info, fname,
                         loop_depth)
        elif isinstance(stmt, ast.While):
            _check_expr(stmt.cond, seen, info, fname)
            _check_stmts(stmt.body, seen, declared, info, fname,
                         loop_depth + 1)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                _check_stmts([stmt.init], seen, declared, info, fname,
                             loop_depth)
            if stmt.cond is not None:
                _check_expr(stmt.cond, seen, info, fname)
            if stmt.step is not None:
                _check_stmts([stmt.step], seen, declared, info, fname,
                             loop_depth)
            _check_stmts(stmt.body, seen, declared, info, fname,
                         loop_depth + 1)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if loop_depth == 0:
                word = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemaError(f"{word!r} outside a loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _check_expr(stmt.value, seen, info, fname)
        elif isinstance(stmt, ast.ExprStmt):
            _check_expr(stmt.expr, seen, info, fname)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemaError(f"unknown statement {type(stmt).__name__}",
                            stmt.line)


def _check_expr(expr, seen, info, fname):
    if isinstance(expr, ast.IntLit):
        return
    if isinstance(expr, ast.VarRef):
        if expr.name not in seen:
            if expr.name in info.globals:
                raise SemaError(
                    f"global array {expr.name!r} needs an index", expr.line
                )
            raise SemaError(
                f"undeclared variable {expr.name!r} in {fname}", expr.line
            )
        return
    if isinstance(expr, ast.ArrayRef):
        if expr.name not in info.globals:
            raise SemaError(f"{expr.name!r} is not a global array", expr.line)
        _check_expr(expr.index, seen, info, fname)
        return
    if isinstance(expr, ast.Unary):
        _check_expr(expr.operand, seen, info, fname)
        return
    if isinstance(expr, ast.Binary):
        _check_expr(expr.left, seen, info, fname)
        _check_expr(expr.right, seen, info, fname)
        return
    if isinstance(expr, ast.Logical):
        for side in (expr.left, expr.right):
            if ast.contains_call(side):
                raise SemaError(
                    "calls are not allowed inside '&&'/'||' operands "
                    "(evaluation order would be observable)",
                    expr.line,
                )
        _check_expr(expr.left, seen, info, fname)
        _check_expr(expr.right, seen, info, fname)
        return
    if isinstance(expr, ast.Call):
        if expr.name not in info.functions:
            raise SemaError(f"call to unknown function {expr.name!r}",
                            expr.line)
        arity = info.functions[expr.name]
        if len(expr.args) != arity:
            raise SemaError(
                f"{expr.name!r} takes {arity} argument(s), got "
                f"{len(expr.args)}",
                expr.line,
            )
        for arg in expr.args:
            _check_expr(arg, seen, info, fname)
        return
    raise SemaError(  # pragma: no cover - parser produces no other nodes
        f"unknown expression {type(expr).__name__}", expr.line
    )
