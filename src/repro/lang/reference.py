"""Reference interpreter for ``minic`` — the semantic oracle.

A direct tree-walking evaluator of the AST with exactly the language's
specified semantics (64-bit wrapping, C-style division truncating toward
zero, division by zero yielding 0, out-of-range array reads yielding 0,
out-of-range writes faulting).  The differential tests run every program
through this oracle, the baseline compiler and the hyperblock compiler,
and require all three to agree — the strongest correctness check the
reproduction has.
"""

from typing import Dict, List

from repro.isa.registers import wrap
from repro.lang import ast
from repro.lang.sema import analyze


class ReferenceError_(Exception):
    """Runtime fault in the reference interpreter (mirrors EngineError)."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class ReferenceInterpreter:
    """Evaluates a parsed module directly."""

    def __init__(self, module: ast.Module, max_steps: int = 50_000_000):
        analyze(module)
        self.module = module
        self.functions = {f.name: f for f in module.functions}
        self.arrays: Dict[str, List[int]] = {
            g.name: [0] * g.size for g in module.globals
        }
        self.max_steps = max_steps
        self.steps = 0

    def run(self) -> int:
        """Execute ``main`` and return its value."""
        return self.call("main", [])

    def call(self, name: str, args: List[int]) -> int:
        func = self.functions[name]
        env: Dict[str, int] = dict(zip(func.params, args))
        try:
            self._exec_block(func.body, env)
        except _Return as ret:
            return ret.value
        return 0

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ReferenceError_("step limit exceeded")

    # -- statements -----------------------------------------------------------

    def _exec_block(self, stmts, env) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _exec(self, stmt, env) -> None:
        self._tick()
        if isinstance(stmt, ast.VarDecl):
            env[stmt.name] = (
                self._eval(stmt.init, env) if stmt.init is not None else
                env.get(stmt.name, 0)
            )
            if stmt.init is None and stmt.name not in env:
                env[stmt.name] = 0
        elif isinstance(stmt, ast.Assign):
            env[stmt.target] = self._eval(stmt.value, env)
        elif isinstance(stmt, ast.ArrayAssign):
            index = self._eval(stmt.index, env)
            value = self._eval(stmt.value, env)
            array = self.arrays[stmt.name]
            if not 0 <= index < len(array):
                raise ReferenceError_(
                    f"store out of range: {stmt.name}[{index}]"
                )
            array[index] = value
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond, env) != 0:
                self._exec_block(stmt.then_body, env)
            else:
                self._exec_block(stmt.else_body, env)
        elif isinstance(stmt, ast.While):
            while self._eval(stmt.cond, env) != 0:
                try:
                    self._exec_block(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._exec(stmt.init, env)
            while (
                stmt.cond is None or self._eval(stmt.cond, env) != 0
            ):
                try:
                    self._exec_block(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._exec(stmt.step, env)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Return):
            value = (
                self._eval(stmt.value, env) if stmt.value is not None else 0
            )
            raise _Return(value)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        else:  # pragma: no cover
            raise ReferenceError_(f"unknown statement {type(stmt).__name__}")

    # -- expressions ------------------------------------------------------------

    def _eval(self, expr, env) -> int:
        self._tick()
        if isinstance(expr, ast.IntLit):
            return wrap(expr.value)
        if isinstance(expr, ast.VarRef):
            return env.get(expr.name, 0)
        if isinstance(expr, ast.ArrayRef):
            index = self._eval(expr.index, env)
            array = self.arrays[expr.name]
            if 0 <= index < len(array):
                return array[index]
            return 0  # non-faulting load semantics
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return wrap(-value)
            if expr.op == "~":
                return wrap(~value)
            return 1 if value == 0 else 0  # '!'
        if isinstance(expr, ast.Binary):
            return self._binary(expr, env)
        if isinstance(expr, ast.Logical):
            left = self._eval(expr.left, env)
            # Operands are call-free (sema), so short-circuit and eager
            # evaluation agree; evaluate eagerly like the predicated code.
            right = self._eval(expr.right, env)
            if expr.op == "&&":
                return 1 if (left != 0 and right != 0) else 0
            return 1 if (left != 0 or right != 0) else 0
        if isinstance(expr, ast.Call):
            args = [self._eval(arg, env) for arg in expr.args]
            return self.call(expr.name, args)
        raise ReferenceError_(  # pragma: no cover
            f"unknown expression {type(expr).__name__}"
        )

    def _binary(self, expr: ast.Binary, env) -> int:
        op = expr.op
        a = self._eval(expr.left, env)
        b = self._eval(expr.right, env)
        if op == "+":
            return wrap(a + b)
        if op == "-":
            return wrap(a - b)
        if op == "*":
            return wrap(a * b)
        if op == "/":
            if b == 0:
                return 0
            q = abs(a) // abs(b)
            return wrap(-q if (a < 0) != (b < 0) else q)
        if op == "%":
            if b == 0:
                return 0
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return wrap(a - q * b)
        if op == "&":
            return wrap(a & b)
        if op == "|":
            return wrap(a | b)
        if op == "^":
            return wrap(a ^ b)
        if op == "<<":
            return wrap(a << (b & 63))
        if op == ">>":
            return wrap(a >> (b & 63))  # arithmetic shift on signed ints
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        return 1 if a >= b else 0  # ">="


def evaluate(source: str, max_steps: int = 50_000_000) -> int:
    """Parse and evaluate a program, returning ``main``'s value."""
    from repro.lang.parser import parse

    return ReferenceInterpreter(parse(source), max_steps=max_steps).run()
