"""Recursive-descent parser for ``minic``.

Grammar (EBNF, ``//`` comments and whitespace skipped by the lexer)::

    module    := (global | func)*
    global    := "global" IDENT "[" INT "]" ";"
    func      := "func" IDENT "(" [IDENT ("," IDENT)*] ")" block
    block     := "{" stmt* "}"
    stmt      := "var" vardecl ("," vardecl)* ";"
               | "if" "(" expr ")" block ["else" (block | ifstmt)]
               | "while" "(" expr ")" block
               | "for" "(" [simple] ";" [expr] ";" [simple] ")" block
               | "break" ";" | "continue" ";"
               | "return" [expr] ";"
               | simple ";"
    vardecl   := IDENT ["=" expr]
    simple    := IDENT "=" expr
               | IDENT "[" expr "]" "=" expr
               | expr                      // call statement
    expr      := logical-or with C precedence:
                 || > && > | > ^ > & > (== !=) > (< <= > >=)
                 > (<< >>) > (+ -) > (* / %) > unary(- ! ~) > primary
    primary   := INT | IDENT | IDENT "(" args ")" | IDENT "[" expr "]"
               | "(" expr ")"
"""

from typing import List

from repro.lang import ast
from repro.lang.lexer import Token, TokenType, tokenize


class ParseError(Exception):
    """Syntax error with line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


#: binary operator precedence levels, loosest first
_BINARY_LEVELS = [
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------

    def _id(self) -> int:
        self._next_id += 1
        return self._next_id

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def check(self, value: str) -> bool:
        token = self.peek()
        return (
            token.type in (TokenType.PUNCT, TokenType.KEYWORD)
            and token.value == value
        )

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            token = self.peek()
            raise ParseError(
                f"expected {value!r}, found {token.value or 'end of file'!r}",
                token.line,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(
                f"expected identifier, found {token.value!r}", token.line
            )
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_module(self) -> ast.Module:
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FuncDecl] = []
        module_id = self._id()
        while self.peek().type is not TokenType.EOF:
            if self.check("global"):
                globals_.append(self.parse_global())
            elif self.check("func"):
                functions.append(self.parse_func())
            else:
                token = self.peek()
                raise ParseError(
                    f"expected 'global' or 'func', found {token.value!r}",
                    token.line,
                )
        return ast.Module(module_id, 1, globals_, functions)

    def parse_global(self) -> ast.GlobalDecl:
        line = self.expect("global").line
        name = self.expect_ident().value
        self.expect("[")
        size_token = self.peek()
        if size_token.type is not TokenType.INT:
            raise ParseError("global size must be an integer literal",
                             size_token.line)
        self.advance()
        self.expect("]")
        self.expect(";")
        return ast.GlobalDecl(self._id(), line, name, int(size_token.value))

    def parse_func(self) -> ast.FuncDecl:
        line = self.expect("func").line
        name = self.expect_ident().value
        self.expect("(")
        params: List[str] = []
        if not self.check(")"):
            params.append(self.expect_ident().value)
            while self.accept(","):
                params.append(self.expect_ident().value)
        self.expect(")")
        node_id = self._id()
        body = self.parse_block()
        return ast.FuncDecl(node_id, line, name, params, body)

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> List:
        self.expect("{")
        stmts = []
        while not self.check("}"):
            if self.peek().type is TokenType.EOF:
                raise ParseError("unterminated block", self.peek().line)
            stmts.extend(self.parse_stmt())
        self.expect("}")
        return stmts

    def parse_stmt(self) -> List:
        """Parse one statement; var declarations may expand to several."""
        if self.check("var"):
            return self.parse_var_decls()
        if self.check("if"):
            return [self.parse_if()]
        if self.check("while"):
            return [self.parse_while()]
        if self.check("for"):
            return [self.parse_for()]
        if self.check("break"):
            line = self.advance().line
            self.expect(";")
            return [ast.Break(self._id(), line)]
        if self.check("continue"):
            line = self.advance().line
            self.expect(";")
            return [ast.Continue(self._id(), line)]
        if self.check("return"):
            line = self.advance().line
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return [ast.Return(self._id(), line, value)]
        stmt = self.parse_simple()
        self.expect(";")
        return [stmt]

    def parse_var_decls(self) -> List:
        line = self.expect("var").line
        decls = []
        while True:
            name = self.expect_ident().value
            init = self.parse_expr() if self.accept("=") else None
            decls.append(ast.VarDecl(self._id(), line, name, init))
            if not self.accept(","):
                break
        self.expect(";")
        return decls

    def parse_simple(self):
        """Assignment (scalar or array element) or expression statement."""
        token = self.peek()
        if token.type is TokenType.IDENT:
            after = self.tokens[self.pos + 1]
            if after.type is TokenType.PUNCT and after.value == "=":
                name = self.advance().value
                self.advance()  # '='
                value = self.parse_expr()
                return ast.Assign(self._id(), token.line, name, value)
            if after.type is TokenType.PUNCT and after.value == "[":
                # Could be an array assignment or an array read in an
                # expression statement; look for '=' after the ']'.
                save = self.pos
                self.advance()  # name
                self.advance()  # '['
                index = self.parse_expr()
                self.expect("]")
                if self.accept("="):
                    value = self.parse_expr()
                    return ast.ArrayAssign(
                        self._id(), token.line, token.value, index, value
                    )
                self.pos = save
        expr = self.parse_expr()
        return ast.ExprStmt(self._id(), token.line, expr)

    def parse_if(self) -> ast.If:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        node_id = self._id()
        then_body = self.parse_block()
        else_body: List = []
        if self.accept("else"):
            if self.check("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(node_id, line, cond, then_body, else_body)

    def parse_while(self) -> ast.While:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        node_id = self._id()
        body = self.parse_block()
        return ast.While(node_id, line, cond, body)

    def parse_for(self) -> ast.For:
        line = self.expect("for").line
        self.expect("(")
        init = None if self.check(";") else self._parse_for_clause()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step = None if self.check(")") else self._parse_for_clause()
        self.expect(")")
        node_id = self._id()
        body = self.parse_block()
        return ast.For(node_id, line, init, cond, step, body)

    def _parse_for_clause(self):
        if self.check("var"):
            raise ParseError(
                "'var' is not allowed in a for-clause; declare it before "
                "the loop",
                self.peek().line,
            )
        return self.parse_simple()

    # -- expressions -----------------------------------------------------------

    def parse_expr(self):
        return self.parse_logical_or()

    def parse_logical_or(self):
        left = self.parse_logical_and()
        while self.check("||"):
            line = self.advance().line
            right = self.parse_logical_and()
            left = ast.Logical(self._id(), line, "||", left, right)
        return left

    def parse_logical_and(self):
        left = self.parse_binary(0)
        while self.check("&&"):
            line = self.advance().line
            right = self.parse_binary(0)
            left = ast.Logical(self._id(), line, "&&", left, right)
        return left

    def parse_binary(self, level: int):
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while (
            self.peek().type is TokenType.PUNCT and self.peek().value in ops
        ):
            token = self.advance()
            right = self.parse_binary(level + 1)
            left = ast.Binary(self._id(), token.line, token.value, left, right)
        return left

    def parse_unary(self):
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value in ("-", "!", "~"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(self._id(), token.line, token.value, operand)
        return self.parse_primary()

    def parse_primary(self):
        token = self.peek()
        if token.type is TokenType.INT:
            self.advance()
            return ast.IntLit(self._id(), token.line, int(token.value))
        if token.type is TokenType.IDENT:
            name = self.advance().value
            if self.accept("("):
                args = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.Call(self._id(), token.line, name, args)
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return ast.ArrayRef(self._id(), token.line, name, index)
            return ast.VarRef(self._id(), token.line, name)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError(
            f"expected expression, found {token.value or 'end of file'!r}",
            token.line,
        )


def parse(source: str) -> ast.Module:
    """Parse ``minic`` source into a :class:`~repro.lang.ast.Module`."""
    return Parser(tokenize(source)).parse_module()
