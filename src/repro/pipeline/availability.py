"""Predicate-availability model.

A value produced by the instruction at dynamic index ``i`` has been
computed by the time the front end fetches the instruction at index
``i + D``, where ``D`` approximates (cycles from a compare's execute
stage to the earliest fetch stage that can consume its predicate) x
(sustained fetch rate in instructions per cycle).  For a 2003-era EPIC
core sustaining ~2 IPC on integer code with the predicate forwarded a
couple of cycles after the compare issues, ``D`` around 4 dynamic
instructions is representative; experiment E8 sweeps 0..32 (``D = 0`` is
the perfect-predicate-knowledge bound).

This single parameter stands in for the authors' concrete pipeline: any
machine maps onto some ``D``, and every paper mechanism consumes
availability only through this interface.
"""

from dataclasses import dataclass

import numpy as np

from repro.trace.container import Trace

#: Representative front-end distance for a 2003-era EPIC pipeline.
DEFAULT_DISTANCE = 4


@dataclass(frozen=True)
class AvailabilityModel:
    """Visibility of computed predicate values at fetch."""

    distance: int = DEFAULT_DISTANCE

    def __post_init__(self):
        if self.distance < 0:
            raise ValueError("distance must be non-negative")

    def value_visible(self, produced_at: int, fetch_at: int) -> bool:
        """Is a value produced at ``produced_at`` visible when fetching
        the instruction at ``fetch_at``?"""
        return produced_at >= 0 and fetch_at - produced_at >= self.distance

    def squashable_mask(self, trace: Trace) -> np.ndarray:
        """Per-branch mask: guard known false at fetch (see
        :meth:`repro.trace.container.Trace.guard_known_false`)."""
        return trace.guard_known_false(self.distance)

    def guard_known_mask(self, trace: Trace) -> np.ndarray:
        """Per-branch mask: guard value (either way) visible at fetch."""
        return trace.guard_known(self.distance)

    def coverage(self, trace: Trace) -> dict:
        """Headline coverage numbers for experiment E3."""
        branches = max(trace.num_branches, 1)
        known = self.guard_known_mask(trace)
        false_known = self.squashable_mask(trace)
        region = trace.b_region
        region_total = max(int(region.sum()), 1)
        return {
            "distance": self.distance,
            "guard_known": float(known.sum() / branches),
            "guard_known_false": float(false_known.sum() / branches),
            "region_guard_known": float(known[region].sum() / region_total),
            "region_guard_known_false": float(
                false_known[region].sum() / region_total
            ),
        }
