"""Branch target buffer (extension beyond the paper's scope).

Direction prediction is only half the front end: a taken prediction
needs the *target* by the next fetch cycle, which a tagged BTB provides.
This module models a set-associative BTB with true-LRU replacement so
experiment E12 can show how the predicate techniques interact with
target pressure (a squashed branch is not-taken by construction, so it
needs no BTB entry and — under the filter policy — does not insert one).
"""

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class BTBConfig:
    """Geometry of the branch target buffer."""

    sets: int = 256
    ways: int = 2

    def __post_init__(self):
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError("sets must be a positive power of two")
        if self.ways <= 0:
            raise ValueError("ways must be positive")

    @property
    def entries(self) -> int:
        return self.sets * self.ways

    def describe(self) -> str:
        return f"btb({self.sets}x{self.ways})"


class BranchTargetBuffer:
    """A tagged, set-associative target buffer with LRU replacement."""

    def __init__(self, config: BTBConfig):
        self.config = config
        self._mask = config.sets - 1
        # per set: list of [tag, target], most-recently-used last
        self._sets: List[List[List[int]]] = [
            [] for _ in range(config.sets)
        ]
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        """Target for ``pc``, or ``None``; updates LRU and counters."""
        ways = self._sets[pc & self._mask]
        tag = pc >> self.config.sets.bit_length() - 1
        for index, entry in enumerate(ways):
            if entry[0] == tag:
                ways.append(ways.pop(index))
                self.hits += 1
                return entry[1]
        self.misses += 1
        return None

    def insert(self, pc: int, target: int) -> None:
        """Install/refresh the mapping for a taken branch."""
        ways = self._sets[pc & self._mask]
        tag = pc >> self.config.sets.bit_length() - 1
        for index, entry in enumerate(ways):
            if entry[0] == tag:
                entry[1] = target
                ways.append(ways.pop(index))
                return
        if len(ways) >= self.config.ways:
            ways.pop(0)  # evict LRU
        ways.append([tag, target])

    @property
    def storage_entries(self) -> int:
        return self.config.entries
