"""Analytic cycle model for an EPIC-class front end.

The paper reports speedups measured on a detailed simulator; the
first-order effect of better branch prediction is
``penalty x fewer-mispredictions``, which this model captures:

    cycles = ceil(instructions / fetch_width) + penalty * mispredictions

Hyperblock code executes more instructions (both arms) but fewer
mispredicted branches; the model therefore also reproduces the basic
if-conversion trade-off, not just predictor deltas.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle/speedup model.

    Attributes:
        fetch_width: instructions issued per cycle when not stalled
            (6 = two 3-op bundles, Itanium-like).
        misprediction_penalty: cycles lost per mispredicted branch
            (front-end refill of a 2003-era EPIC pipeline).
        misfetch_penalty: cycles lost when the direction was right but
            the BTB had no target (redirect happens at decode, a much
            shorter bubble).
    """

    fetch_width: int = 6
    misprediction_penalty: int = 10
    misfetch_penalty: int = 2

    def cycles(self, instructions: int, mispredictions: int,
               misfetches: int = 0) -> float:
        base = -(-instructions // self.fetch_width)  # ceil division
        return (
            base
            + self.misprediction_penalty * mispredictions
            + self.misfetch_penalty * misfetches
        )

    def ipc(self, instructions: int, mispredictions: int,
            misfetches: int = 0) -> float:
        cycles = self.cycles(instructions, mispredictions, misfetches)
        return instructions / cycles if cycles else 0.0

    def speedup(
        self,
        base_instructions: int,
        base_mispredictions: int,
        new_instructions: int,
        new_mispredictions: int,
    ) -> float:
        """Speedup of the *same work* under a new (instructions,
        mispredictions) pair — e.g. hyperblock code + a better predictor
        versus baseline code + baseline predictor."""
        base = self.cycles(base_instructions, base_mispredictions)
        new = self.cycles(new_instructions, new_mispredictions)
        return base / new if new else 0.0
