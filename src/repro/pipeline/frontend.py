"""The front end's global history register."""


class GlobalHistory:
    """A shift register of recent outcome/predicate bits.

    The least-significant bit is the most recent event.  Branch outcomes
    are shifted in at predict time (trace-driven simulation follows the
    correct path, so "speculative update + repair" collapses to updating
    with the actual outcome immediately — the standard idealization).
    Predicate-define bits are shifted in by the driver when the
    availability model says the value has reached the front end.
    """

    __slots__ = ("bits", "mask", "length")

    def __init__(self, length: int = 32):
        if not 1 <= length <= 64:
            raise ValueError("history length must be 1..64")
        self.length = length
        self.mask = (1 << length) - 1
        self.bits = 0

    def shift(self, bit: bool) -> None:
        self.bits = ((self.bits << 1) | int(bit)) & self.mask

    @property
    def value(self) -> int:
        return self.bits

    def reset(self) -> None:
        self.bits = 0

    def snapshot(self) -> int:
        return self.bits

    def restore(self, value: int) -> None:
        self.bits = value & self.mask
