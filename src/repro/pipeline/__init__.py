"""Front-end timing models.

* :mod:`repro.pipeline.availability` — when a computed predicate value
  becomes visible to the fetch stage (the distance-``D`` model both of
  the paper's mechanisms hinge on).
* :mod:`repro.pipeline.frontend` — the global history register and its
  update policies.
* :mod:`repro.pipeline.cost` — an analytic cycle/speedup model for an
  EPIC-class front end.
"""

from repro.pipeline.availability import AvailabilityModel
from repro.pipeline.btb import BTBConfig, BranchTargetBuffer
from repro.pipeline.cost import CostModel
from repro.pipeline.fetchsim import FetchModel, FrontendResult, simulate_frontend
from repro.pipeline.frontend import GlobalHistory

__all__ = [
    "AvailabilityModel",
    "BTBConfig",
    "BranchTargetBuffer",
    "CostModel",
    "FetchModel",
    "FrontendResult",
    "GlobalHistory",
    "simulate_frontend",
]
