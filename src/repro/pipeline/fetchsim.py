"""Discrete front-end fetch simulation.

A step up from the analytic :class:`~repro.pipeline.cost.CostModel`: the
fetch stream is replayed branch by branch, charging

* ``ceil(run / width)`` cycles per straight-line fetch run (a taken
  branch ends its fetch cycle — *fragmentation*, the second cost
  if-conversion removes besides mispredictions);
* the full ``mispredict_penalty`` per wrong direction;
* ``misfetch_penalty`` when the direction was right but the BTB missed;
* ``taken_bubble`` cycles per correctly predicted taken branch (the
  one-cycle redirect of front ends without a next-line predictor).

The model consumes the per-branch flags a simulation run records with
``SimOptions(record_flags=True)``, so the same replay prices any
predictor/front-end configuration.  Unconditional jumps are not branch
events in our traces; their (identical in every configuration)
fragmentation is left out, which cancels in speedup ratios.
"""

from dataclasses import dataclass

from repro.trace.container import Trace


@dataclass(frozen=True)
class FetchModel:
    """Front-end fetch parameters."""

    width: int = 6
    mispredict_penalty: int = 10
    misfetch_penalty: int = 2
    taken_bubble: int = 1

    def __post_init__(self):
        if self.width <= 0:
            raise ValueError("width must be positive")


@dataclass
class FrontendResult:
    """Cycle breakdown of one fetch replay."""

    cycles: float
    instructions: int
    fetch_cycles: float
    mispredict_cycles: float
    misfetch_cycles: float
    bubble_cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate_frontend(trace: Trace, flags, model: FetchModel = FetchModel()
                      ) -> FrontendResult:
    """Replay the fetch stream of ``trace`` under ``model``.

    ``flags`` is the :class:`~repro.sim.driver.BranchFlags` recorded by a
    simulation run over the *same trace*.
    """
    b_idx = trace.b_idx
    taken = trace.b_taken
    correct = flags.correct
    misfetch = flags.misfetch
    if len(correct) != trace.num_branches:
        raise ValueError("flags do not match the trace")

    width = model.width
    fetch_cycles = 0.0
    mispredict_cycles = 0.0
    misfetch_cycles = 0.0
    bubble_cycles = 0.0

    prev = 0  # dynamic index where the current fetch run began
    for i in range(trace.num_branches):
        end = int(b_idx[i])
        if taken[i]:
            run = end - prev + 1
            fetch_cycles += -(-run // width)
            prev = end + 1
            if correct[i]:
                if misfetch[i]:
                    misfetch_cycles += model.misfetch_penalty
                else:
                    bubble_cycles += model.taken_bubble
            else:
                mispredict_cycles += model.mispredict_penalty
        elif not correct[i]:
            # Wrongly predicted taken: the run still breaks at the
            # branch (fetch went down the wrong path) plus the penalty.
            run = end - prev + 1
            fetch_cycles += -(-run // width)
            prev = end + 1
            mispredict_cycles += model.mispredict_penalty
        # correctly predicted not-taken: the run continues.

    tail = trace.meta.instructions - prev
    if tail > 0:
        fetch_cycles += -(-tail // width)

    cycles = (
        fetch_cycles + mispredict_cycles + misfetch_cycles + bubble_cycles
    )
    return FrontendResult(
        cycles=cycles,
        instructions=trace.meta.instructions,
        fetch_cycles=fetch_cycles,
        mispredict_cycles=mispredict_cycles,
        misfetch_cycles=misfetch_cycles,
        bubble_cycles=bubble_cycles,
    )
